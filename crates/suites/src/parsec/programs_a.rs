//! PARSEC skeletons, part 1: blackscholes, swaptions, fluidanimate,
//! canneal, freqmine, vips, bodytrack.

use spinrace_synclib::patterns::{spin_until_nonzero, spin_until_nonzero_sized};
use spinrace_tir::{MemOrder, Module, ModuleBuilder, Operand, RmwOp};

/// Slice bounds for worker `id` over `size` items in `threads` parts.
fn slice(id: u32, threads: u32, size: u32) -> (i64, i64) {
    let per = size.div_ceil(threads);
    let lo = (id * per).min(size) as i64;
    let hi = ((id + 1) * per).min(size) as i64;
    (lo, hi)
}

/// Data-parallel option pricing with a barrier between two passes.
/// No locks, no CVs, no ad-hoc — every tool should stay silent.
pub fn blackscholes(threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("blackscholes");
    let bar = mb.global("bar", 3);
    let options = mb.global("options", size as u64);
    let prices = mb.global("prices", size as u64);
    let smoothed = mb.global("smoothed", size as u64);
    let mut workers = Vec::new();
    for id in 0..threads {
        let (lo, hi) = slice(id, threads, size);
        workers.push(mb.function(&format!("bs_worker_{id}"), 1, |f| {
            for i in lo..hi {
                let o = f.load(options.at(i));
                let p1 = f.mul(o, 3);
                let p = f.add(p1, 1);
                f.store(prices.at(i), p);
            }
            f.barrier_wait(bar.at(0));
            for i in lo..hi {
                let here = f.load(prices.at(i));
                let next = f.load(prices.at((i + 1) % size as i64));
                let s = f.add(here, next);
                f.store(smoothed.at(i), s);
            }
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        for i in 0..size as i64 {
            f.store(options.at(i), i + 1);
        }
        f.barrier_init(bar.at(0), threads as i64);
        let tids: Vec<_> = workers.iter().map(|&w| f.spawn(w, 0)).collect();
        for t in tids {
            f.join(t);
        }
        let v = f.load(smoothed.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Embarrassingly parallel simulation slices; ordering purely via join.
pub fn swaptions(threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("swaptions");
    let rates = mb.global("rates", size as u64);
    let values = mb.global("values", size as u64);
    let mut workers = Vec::new();
    for id in 0..threads {
        let (lo, hi) = slice(id, threads, size);
        workers.push(mb.function(&format!("sw_worker_{id}"), 1, |f| {
            for i in lo..hi {
                let r = f.load(rates.at(i));
                let sq = f.mul(r, r);
                let v = f.add(sq, 7);
                f.store(values.at(i), v);
            }
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        for i in 0..size as i64 {
            f.store(rates.at(i), 2 * i + 1);
        }
        let tids: Vec<_> = workers.iter().map(|&w| f.spawn(w, 0)).collect();
        for t in tids {
            f.join(t);
        }
        let mut total = f.const_(0);
        for i in 0..size as i64 {
            let v = f.load(values.at(i));
            total = f.add(total, v);
        }
        f.output(total);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Grid relaxation with per-cell locks (neighbours locked in index order)
/// and a barrier between iterations.
pub fn fluidanimate(threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("fluidanimate");
    let bar = mb.global("bar", 3);
    let cellmu = mb.global("cellmu", size as u64);
    let cells = mb.global("cells", size as u64);
    let mut workers = Vec::new();
    for id in 0..threads {
        let (lo, hi) = slice(id, threads, size);
        workers.push(mb.function(&format!("fa_worker_{id}"), 1, |f| {
            for round in 0..2 {
                for i in lo..hi {
                    if i + 1 < size as i64 {
                        f.lock(cellmu.at(i));
                        f.lock(cellmu.at(i + 1));
                        let a = f.load(cells.at(i));
                        let b = f.load(cells.at(i + 1));
                        let s = f.add(a, b);
                        f.store(cells.at(i), s);
                        f.unlock(cellmu.at(i + 1));
                        f.unlock(cellmu.at(i));
                    } else {
                        f.lock(cellmu.at(i));
                        let a = f.load(cells.at(i));
                        let s = f.add(a, round + 1);
                        f.store(cells.at(i), s);
                        f.unlock(cellmu.at(i));
                    }
                }
                f.barrier_wait(bar.at(0));
            }
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        for i in 0..size as i64 {
            f.store(cells.at(i), i);
        }
        f.barrier_init(bar.at(0), threads as i64);
        let tids: Vec<_> = workers.iter().map(|&w| f.spawn(w, 0)).collect();
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Simulated annealing with atomic element swaps on disjoint partitions
/// (lock-free, as the original's atomic pointer swaps).
pub fn canneal(threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("canneal");
    let elements = mb.global("elements", size as u64);
    let temperature = mb.global("temperature", 1);
    let mut workers = Vec::new();
    for id in 0..threads {
        let (lo, hi) = slice(id, threads, size);
        workers.push(mb.function(&format!("ca_worker_{id}"), 1, |f| {
            let t = f.load(temperature.at(0));
            for i in lo..hi {
                let delta = f.add(t, i);
                f.rmw(RmwOp::Xchg, elements.at(i), delta, MemOrder::AcqRel);
            }
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        f.store(temperature.at(0), 100);
        for i in 0..size as i64 {
            f.store(elements.at(i), i);
        }
        let tids: Vec<_> = workers.iter().map(|&w| f.spawn(w, 0)).collect();
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// "OpenMP" mining: a custom runtime the detector has no library
/// knowledge of in *any* configuration — an atomic chunk dispatcher, a
/// hand-rolled counter/generation barrier, and a master-ready flag whose
/// wait loop is too obscure for the spin patterns (the residual 2).
pub fn freqmine(threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("freqmine");
    let master_ready = mb.global("master_ready", 1);
    let chunk_next = mb.global("chunk_next", 1);
    let omp_ctr = mb.global("omp_ctr", 1);
    let omp_gen = mb.global("omp_gen", 1);
    let items = mb.global("items", size as u64);
    let counts = mb.global("counts", size as u64);
    let totals = mb.global("totals", threads as u64);
    let nthreads = threads as i64;
    let mut workers = Vec::new();
    for id in 0..threads {
        workers.push(mb.function(&format!("fm_worker_{id}"), 1, |f| {
            // Obscure master-ready wait: 9-block loop, beyond any window.
            spin_until_nonzero_sized(f, master_ready.at(0), 9);
            // Dynamic chunk dispatch via atomic fetch-add.
            let head = f.new_block();
            let body = f.new_block();
            let barrier = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let c = f.rmw(RmwOp::Add, chunk_next.at(0), 1, MemOrder::SeqCst);
            let done = f.ge(c, size as i64);
            f.branch(done, barrier, body);
            f.switch_to(body);
            let v = f.load(items.idx(c));
            let doubled = f.mul(v, 2);
            f.store(counts.idx(c), doubled);
            f.jump(head);
            f.switch_to(barrier);
            // Hand-rolled barrier: atomic arrivals, plain-store generation.
            let gen = f.load(omp_gen.at(0));
            let old = f.rmw(RmwOp::Add, omp_ctr.at(0), 1, MemOrder::SeqCst);
            let arrived = f.add(old, 1);
            let last = f.eq(arrived, nthreads);
            let last_b = f.new_block();
            let spin_b = f.new_block();
            let after = f.new_block();
            f.branch(last, last_b, spin_b);
            f.switch_to(last_b);
            f.store(omp_ctr.at(0), 0);
            let g2 = f.add(gen, 1);
            f.store(omp_gen.at(0), g2);
            f.jump(after);
            f.switch_to(spin_b);
            let now = f.load(omp_gen.at(0));
            let same = f.eq(now, gen);
            f.branch(same, spin_b, after);
            f.switch_to(after);
            // Reduction pass: every worker reads all counts (unrolled).
            let mut total = f.const_(0);
            for i in 0..size as i64 {
                let cv = f.load(counts.at(i));
                total = f.add(total, cv);
            }
            f.store(totals.idx(f.param(0)), total);
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        for i in 0..size as i64 {
            f.store(items.at(i), i + 1);
        }
        let tids: Vec<_> = workers
            .iter()
            .enumerate()
            .map(|(i, &w)| f.spawn(w, i as i64))
            .collect();
        f.store(master_ready.at(0), 1);
        for t in tids {
            f.join(t);
        }
        let v = f.load(totals.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Image pipeline over a custom GLIB-like library: a hand-rolled TTAS
/// mutex (part of the *program*, unknown to every detector) plus per-item
/// plain done-flags between stages — all clean spin patterns.
pub fn vips(_threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("vips");
    let glock = mb.global("glock", 1);
    let stats = mb.global("stats", 1);
    let buf1 = mb.global("buf1", size as u64);
    let flag1 = mb.global("flag1", size as u64);
    let buf2 = mb.global("buf2", size as u64);
    let flag2 = mb.global("flag2", size as u64);
    // The "GLIB" lock: test-and-test-and-set, in program code.
    let glib_lock = mb.function("glib_lock", 1, |f| {
        let test = f.new_block();
        let try_b = f.new_block();
        let done = f.new_block();
        f.jump(test);
        f.switch_to(test);
        let v = f.load(spinrace_tir::AddrExpr::Based {
            base: f.param(0),
            disp: 0,
        });
        f.branch(v, test, try_b);
        f.switch_to(try_b);
        let old = f.cas(
            spinrace_tir::AddrExpr::Based {
                base: f.param(0),
                disp: 0,
            },
            0,
            1,
            MemOrder::AcqRel,
        );
        f.branch(old, test, done);
        f.switch_to(done);
        f.ret(None);
    });
    let glib_unlock = mb.function("glib_unlock", 1, |f| {
        f.store(
            spinrace_tir::AddrExpr::Based {
                base: f.param(0),
                disp: 0,
            },
            0,
        );
        f.ret(None);
    });
    let bump_stats = mb.function("bump_stats", 1, |f| {
        let p = f.addr_of(glock, 0);
        f.call_void(glib_lock, &[Operand::Reg(p)]);
        let s = f.load(stats.at(0));
        let s2 = f.add(s, 1);
        f.store(stats.at(0), s2);
        f.call_void(glib_unlock, &[Operand::Reg(p)]);
        f.ret(None);
    });
    let stage1 = mb.function("stage1", 1, |f| {
        for i in 0..size as i64 {
            let v = f.const_(i + 10);
            f.store(buf1.at(i), v);
            f.store(flag1.at(i), 1);
            f.call_void(bump_stats, &[Operand::Imm(0)]);
        }
        f.ret(None);
    });
    let stage2 = mb.function("stage2", 1, |f| {
        for i in 0..size as i64 {
            spin_until_nonzero(f, flag1.at(i));
            let v = f.load(buf1.at(i));
            let v2 = f.mul(v, 2);
            f.store(buf2.at(i), v2);
            f.store(flag2.at(i), 1);
            f.call_void(bump_stats, &[Operand::Imm(0)]);
        }
        f.ret(None);
    });
    let stage3 = mb.function("stage3", 1, |f| {
        let mut total = f.const_(0);
        for i in 0..size as i64 {
            spin_until_nonzero(f, flag2.at(i));
            let v = f.load(buf2.at(i));
            total = f.add(total, v);
        }
        f.output(total);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(stage1, 0);
        let t2 = f.spawn(stage2, 0);
        let t3 = f.spawn(stage3, 0);
        f.join(t1);
        f.join(t2);
        f.join(t3);
        let s = f.load(stats.at(0));
        f.output(s);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Body tracking: a mutex+CV task queue and a frame barrier (library),
/// plus two *obscure* ad-hoc waits (an oversized ticket loop and an
/// impure-condition results loop) that no configuration can match — the
/// persistent residual. Its heavy CV traffic is what regresses under the
/// obscure `nolib` lowering.
pub fn bodytrack(threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("bodytrack");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let bar = mb.global("bar", 3);
    let queue = mb.global("queue", size as u64);
    let qlen = mb.global("qlen", 1);
    let taken = mb.global("taken", 1);
    let results = mb.global("results", size as u64);
    let tickets = mb.global("tickets", threads as u64);
    let results_ready = mb.global("results_ready", 1);
    let scratch = mb.global("scratch", threads as u64);
    let done_flags = mb.global("done_flags", size as u64);
    let display_sum = mb.global("display_sum", 1);
    let nitems = size as i64;
    // Impure condition helper for the results-ready wait.
    let check_ready = mb.function("check_ready", 1, |f| {
        let s = f.load(scratch.idx(f.param(0)));
        let s2 = f.add(s, 1);
        f.store(scratch.idx(f.param(0)), s2);
        let v = f.load(results_ready.at(0));
        f.ret(Some(Operand::Reg(v)));
    });
    // Display thread: clean per-task flag spins (ad-hoc that the spin
    // feature handles; floods `lib` mode).
    let display = mb.function("bt_display", 1, |f| {
        let mut total = f.const_(0);
        for i in 0..nitems {
            spin_until_nonzero(f, done_flags.at(i));
            let r = f.load(results.at(i));
            total = f.add(total, r);
        }
        f.store(display_sum.at(0), total);
        f.ret(None);
    });
    let mut workers = Vec::new();
    for id in 0..threads {
        workers.push(mb.function(&format!("bt_worker_{id}"), 1, |f| {
            // Obscure ticket wait: 9-block loop (function-pointer-style
            // dispatch in the original).
            spin_until_nonzero_sized(f, tickets.at(id as i64), 9);
            // Pull tasks from the CV queue until all are taken.
            let loop_head = f.new_block();
            let sleepchk = f.new_block();
            let sleep_b = f.new_block();
            let take = f.new_block();
            let done = f.new_block();
            f.jump(loop_head);
            f.switch_to(loop_head);
            f.lock(mu.at(0));
            f.jump(sleepchk);
            f.switch_to(sleepchk);
            let t = f.load(taken.at(0));
            let exhausted = f.ge(t, nitems);
            let finish = f.new_block();
            f.branch(exhausted, finish, sleep_b);
            f.switch_to(finish);
            f.unlock(mu.at(0));
            f.jump(done);
            f.switch_to(sleep_b);
            let l = f.load(qlen.at(0));
            let avail = f.bin(spinrace_tir::BinOp::Gt, l, Operand::Reg(t));
            let wait_b = f.new_block();
            f.branch(avail, take, wait_b);
            f.switch_to(wait_b);
            f.wait(cv.at(0), mu.at(0));
            f.jump(sleepchk);
            f.switch_to(take);
            let idx = f.load(taken.at(0));
            let item = f.load(queue.idx(idx));
            let idx2 = f.add(idx, 1);
            f.store(taken.at(0), idx2);
            f.unlock(mu.at(0));
            let r = f.mul(item, 5);
            f.store(results.idx(idx), r);
            f.store(done_flags.idx(idx), 1);
            f.jump(loop_head);
            f.switch_to(done);
            f.barrier_wait(bar.at(0));
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), threads as i64 + 1);
        let display_tid = f.spawn(display, 0);
        let tids: Vec<_> = workers
            .iter()
            .enumerate()
            .map(|(i, &w)| f.spawn(w, i as i64))
            .collect();
        // Hand out tickets (the obscure flags), one store site each.
        for id in 0..threads as i64 {
            f.store(tickets.at(id), 1);
        }
        // Enqueue tasks one signal per item (unrolled: distinct sites).
        for i in 0..nitems {
            f.lock(mu.at(0));
            f.store(queue.at(i), i + 2);
            let l2 = f.add(i, 1);
            f.store(qlen.at(0), l2);
            f.signal(cv.at(0));
            f.unlock(mu.at(0));
        }
        // Wake anyone still waiting after the last item.
        f.lock(mu.at(0));
        f.broadcast(cv.at(0));
        f.unlock(mu.at(0));
        f.barrier_wait(bar.at(0));
        f.store(results_ready.at(0), 1);
        for t in tids {
            f.join(t);
        }
        f.join(display_tid);
        // Main's own obscure wait (impure condition) before reading.
        let head = f.new_block();
        let after = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.call(check_ready, &[Operand::Imm(0)]);
        f.branch(v, after, head);
        f.switch_to(after);
        let r = f.load(results.at(0));
        f.output(r);
        f.ret(None);
    });
    mb.finish().unwrap()
}
