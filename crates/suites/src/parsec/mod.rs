//! Thirteen miniature programs reproducing the synchronization skeletons
//! of the PARSEC 2.0 applications the paper evaluates.
//!
//! Each program reproduces its original's *synchronization structure* —
//! which library primitives it uses, which ad-hoc patterns it contains,
//! and whether its library internals defeat the spin patterns — around a
//! small computational kernel. Hot handoff code is partially unrolled (per
//! item / per frame) so racy contexts accumulate across distinct static
//! sites, as they do in the full applications. Absolute context counts are
//! therefore scaled down from the paper's (our kernels are orders of
//! magnitude smaller); the *relative* behaviour of the four tools per
//! program is the reproduction target.

mod programs_a;
mod programs_b;

use spinrace_tir::Module;

/// The paper's reported racy-context row for one program (for
/// side-by-side comparison in reports; not used by the analysis).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperRow {
    /// `Helgrind+ lib`.
    pub lib: f64,
    /// `Helgrind+ lib+spin`.
    pub lib_spin: f64,
    /// `Helgrind+ nolib+spin`.
    pub nolib_spin: f64,
    /// `DRD`.
    pub drd: f64,
}

/// One PARSEC-skeleton program with its metadata.
#[derive(Clone)]
pub struct ParsecProgram {
    /// Program name (table row).
    pub name: &'static str,
    /// Parallelization model as listed by the paper.
    pub model: &'static str,
    /// The paper's LOC column (of the original; for the characteristics
    /// table only).
    pub paper_loc: &'static str,
    /// Characteristics row: uses ad-hoc synchronization.
    pub has_adhoc: bool,
    /// Characteristics row: uses condition variables.
    pub uses_cvs: bool,
    /// Characteristics row: uses locks.
    pub uses_locks: bool,
    /// Characteristics row: uses barriers.
    pub uses_barriers: bool,
    /// Worker thread count.
    pub threads: u32,
    /// Kernel size (items/frames/cells — drives unrolling).
    pub size: u32,
    /// Whether `nolib` lowering uses the obscure library internals (the
    /// programs whose real libraries defeated the paper's patterns).
    pub obscure_nolib: bool,
    /// The paper's racy-context row (for comparison output).
    pub paper: PaperRow,
    /// Program builder.
    pub build: fn(u32, u32) -> Module,
}

/// All thirteen programs in the paper's table order.
pub fn all_programs() -> Vec<ParsecProgram> {
    vec![
        ParsecProgram {
            name: "blackscholes",
            model: "POSIX",
            paper_loc: "812",
            has_adhoc: false,
            uses_cvs: false,
            uses_locks: false,
            uses_barriers: true,
            threads: 4,
            size: 16,
            obscure_nolib: false,
            paper: PaperRow {
                lib: 0.0,
                lib_spin: 0.0,
                nolib_spin: 0.0,
                drd: 0.0,
            },
            build: programs_a::blackscholes,
        },
        ParsecProgram {
            name: "swaptions",
            model: "POSIX",
            paper_loc: "4,029",
            has_adhoc: false,
            uses_cvs: false,
            uses_locks: false,
            uses_barriers: false,
            threads: 4,
            size: 16,
            obscure_nolib: false,
            paper: PaperRow {
                lib: 0.0,
                lib_spin: 0.0,
                nolib_spin: 0.0,
                drd: 0.0,
            },
            build: programs_a::swaptions,
        },
        ParsecProgram {
            name: "fluidanimate",
            model: "POSIX",
            paper_loc: "3,689",
            has_adhoc: false,
            uses_cvs: false,
            uses_locks: true,
            uses_barriers: true,
            threads: 4,
            size: 12,
            obscure_nolib: false,
            paper: PaperRow {
                lib: 0.0,
                lib_spin: 0.0,
                nolib_spin: 0.0,
                drd: 0.0,
            },
            build: programs_a::fluidanimate,
        },
        ParsecProgram {
            name: "canneal",
            model: "POSIX",
            paper_loc: "29,31",
            has_adhoc: false,
            uses_cvs: false,
            uses_locks: true,
            uses_barriers: false,
            threads: 4,
            size: 16,
            obscure_nolib: false,
            paper: PaperRow {
                lib: 0.0,
                lib_spin: 0.0,
                nolib_spin: 0.0,
                drd: 0.0,
            },
            build: programs_a::canneal,
        },
        ParsecProgram {
            name: "freqmine",
            model: "OpenMP",
            paper_loc: "10,279",
            has_adhoc: true,
            uses_cvs: false,
            uses_locks: false,
            uses_barriers: true,
            threads: 4,
            size: 24,
            obscure_nolib: false,
            paper: PaperRow {
                lib: 153.4,
                lib_spin: 2.0,
                nolib_spin: 2.0,
                drd: 1000.0,
            },
            build: programs_a::freqmine,
        },
        ParsecProgram {
            name: "vips",
            model: "GLIB",
            paper_loc: "1,255",
            has_adhoc: true,
            uses_cvs: true,
            uses_locks: true,
            uses_barriers: false,
            threads: 3,
            size: 16,
            obscure_nolib: false,
            paper: PaperRow {
                lib: 50.8,
                lib_spin: 0.0,
                nolib_spin: 0.0,
                drd: 858.6,
            },
            build: programs_a::vips,
        },
        ParsecProgram {
            name: "bodytrack",
            model: "POSIX",
            paper_loc: "9,735",
            has_adhoc: true,
            uses_cvs: true,
            uses_locks: true,
            uses_barriers: true,
            threads: 4,
            size: 8,
            obscure_nolib: true,
            paper: PaperRow {
                lib: 36.8,
                lib_spin: 3.6,
                nolib_spin: 32.4,
                drd: 34.6,
            },
            build: programs_a::bodytrack,
        },
        ParsecProgram {
            name: "facesim",
            model: "POSIX",
            paper_loc: "1,391",
            has_adhoc: true,
            uses_cvs: true,
            uses_locks: true,
            uses_barriers: false,
            threads: 4,
            size: 20,
            obscure_nolib: false,
            paper: PaperRow {
                lib: 113.8,
                lib_spin: 0.0,
                nolib_spin: 0.0,
                drd: 1000.0,
            },
            build: programs_b::facesim,
        },
        ParsecProgram {
            name: "ferret",
            model: "POSIX",
            paper_loc: "2,706",
            has_adhoc: true,
            uses_cvs: true,
            uses_locks: true,
            uses_barriers: false,
            threads: 4,
            size: 12,
            obscure_nolib: true,
            paper: PaperRow {
                lib: 111.0,
                lib_spin: 2.0,
                nolib_spin: 47.0,
                drd: 214.6,
            },
            build: programs_b::ferret,
        },
        ParsecProgram {
            name: "x264",
            model: "POSIX",
            paper_loc: "1,494",
            has_adhoc: true,
            uses_cvs: true,
            uses_locks: true,
            uses_barriers: false,
            threads: 4,
            size: 10,
            obscure_nolib: true,
            paper: PaperRow {
                lib: 1000.0,
                lib_spin: 19.0,
                nolib_spin: 28.0,
                drd: 1000.0,
            },
            build: programs_b::x264,
        },
        ParsecProgram {
            name: "dedup",
            model: "POSIX",
            paper_loc: "3,228",
            has_adhoc: true,
            uses_cvs: true,
            uses_locks: true,
            uses_barriers: false,
            threads: 3,
            size: 16,
            obscure_nolib: true,
            paper: PaperRow {
                lib: 1000.0,
                lib_spin: 0.0,
                nolib_spin: 2.0,
                drd: 0.0,
            },
            build: programs_b::dedup,
        },
        ParsecProgram {
            name: "streamcluster",
            model: "POSIX",
            paper_loc: "40,393",
            has_adhoc: true,
            uses_cvs: false,
            uses_locks: true,
            uses_barriers: true,
            threads: 4,
            size: 16,
            obscure_nolib: true,
            paper: PaperRow {
                lib: 4.0,
                lib_spin: 0.0,
                nolib_spin: 1.0,
                drd: 1000.0,
            },
            build: programs_b::streamcluster,
        },
        ParsecProgram {
            name: "raytrace",
            model: "POSIX",
            paper_loc: "13,302",
            has_adhoc: true,
            uses_cvs: false,
            uses_locks: true,
            uses_barriers: false,
            threads: 4,
            size: 16,
            obscure_nolib: false,
            paper: PaperRow {
                lib: 106.4,
                lib_spin: 0.0,
                nolib_spin: 0.0,
                drd: 1000.0,
            },
            build: programs_b::raytrace,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_vm::{run_module, NullSink, VmConfig};

    #[test]
    fn thirteen_programs_in_paper_order() {
        let ps = all_programs();
        assert_eq!(ps.len(), 13);
        assert_eq!(ps[0].name, "blackscholes");
        assert_eq!(ps[12].name, "raytrace");
    }

    #[test]
    fn every_program_runs_clean_under_round_robin() {
        for p in all_programs() {
            let m = (p.build)(p.threads, p.size);
            let r = run_module(&m, VmConfig::round_robin(), &mut NullSink);
            assert!(r.is_ok(), "{} failed: {:?}", p.name, r.err());
        }
    }

    #[test]
    fn every_program_runs_clean_under_random_seeds() {
        for p in all_programs() {
            let m = (p.build)(p.threads, p.size);
            for seed in 1..=3u64 {
                let r = run_module(&m, VmConfig::random(seed), &mut NullSink);
                assert!(r.is_ok(), "{} seed {seed} failed: {:?}", p.name, r.err());
            }
        }
    }

    #[test]
    fn adhoc_flags_match_the_characteristics_table() {
        // First four programs: no ad-hoc sync; the rest have it.
        let ps = all_programs();
        for p in &ps[..4] {
            assert!(!p.has_adhoc, "{}", p.name);
        }
        for p in &ps[4..] {
            assert!(p.has_adhoc, "{}", p.name);
        }
    }
}
