//! PARSEC skeletons, part 2: facesim, ferret, x264, dedup, streamcluster,
//! raytrace.

use spinrace_synclib::patterns::{spin_until_ge, spin_until_nonzero, spin_until_nonzero_sized};
use spinrace_tir::{MemOrder, Module, ModuleBuilder, Operand};

/// Physics simulation with a clean ad-hoc task queue: per-task plain
/// done-flags between the producer and per-partition workers, plus a
/// lock-protected accumulator and a CV completion handshake.
pub fn facesim(threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("facesim");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let acc = mb.global("acc", 1);
    let finished = mb.global("finished", 1);
    // Two rounds reuse one flag word per task (value == round), like the
    // original's frame loop — repeated unordered accesses per location are
    // what survives the long-MSM gating.
    let tasks = mb.global("tasks", (2 * size) as u64);
    let task_ready = mb.global("task_ready", size as u64);
    let outputs = mb.global("outputs", (2 * size) as u64);
    let nthreads = threads as i64;
    let mut workers = Vec::new();
    for id in 0..threads {
        let lo = (id * size / threads) as i64;
        let hi = ((id + 1) * size / threads) as i64;
        workers.push(mb.function(&format!("fs_worker_{id}"), 1, |f| {
            for round in 0..2i64 {
                for i in lo..hi {
                    // clean ad-hoc: wait for the producer's per-task flag
                    spin_until_ge(f, task_ready.at(i), round + 1);
                    let slot = round * size as i64 + i;
                    let t = f.load(tasks.at(slot));
                    let r = f.mul(t, 3);
                    f.store(outputs.at(slot), r);
                    f.lock(mu.at(0));
                    let a = f.load(acc.at(0));
                    let a2 = f.add(a, r);
                    f.store(acc.at(0), a2);
                    f.unlock(mu.at(0));
                }
            }
            f.lock(mu.at(0));
            let done = f.load(finished.at(0));
            let d2 = f.add(done, 1);
            f.store(finished.at(0), d2);
            f.signal(cv.at(0));
            f.unlock(mu.at(0));
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        let tids: Vec<_> = workers
            .iter()
            .enumerate()
            .map(|(i, &w)| f.spawn(w, i as i64))
            .collect();
        // Produce all tasks, flag by flag (unrolled: distinct sites).
        for round in 0..2i64 {
            for i in 0..size as i64 {
                let slot = round * size as i64 + i;
                f.store(tasks.at(slot), slot + 1);
                f.store(task_ready.at(i), round + 1);
            }
        }
        // CV wait for completion.
        let check = f.new_block();
        let sleep = f.new_block();
        let done = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let d = f.load(finished.at(0));
        let all = f.ge(d, nthreads);
        f.branch(all, done, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(done);
        f.unlock(mu.at(0));
        for t in tids {
            f.join(t);
        }
        let a = f.load(acc.at(0));
        f.output(a);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Content-similarity pipeline: CV queue into stage A, clean per-item
/// ad-hoc flags into stage B, and one *obscure* (impure-condition)
/// all-done flag read by main before the joins — the small residual.
pub fn ferret(_threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("ferret");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let q = mb.global("q", size as u64);
    let qlen = mb.global("qlen", 1);
    let mid = mb.global("mid", size as u64);
    let mid_ready = mb.global("mid_ready", size as u64);
    let ranked = mb.global("ranked", size as u64);
    let all_done = mb.global("all_done", 1);
    let scratch = mb.global("scratch", 2);
    let nitems = size as i64;
    let check_done = mb.function("check_done", 1, |f| {
        let s = f.load(scratch.idx(f.param(0)));
        let s2 = f.add(s, 1);
        f.store(scratch.idx(f.param(0)), s2);
        let v = f.load(all_done.at(0));
        f.ret(Some(Operand::Reg(v)));
    });
    // Stage A: consume the CV queue, emit per-item flags.
    let stage_a = mb.function("fr_stage_a", 1, |f| {
        for i in 0..nitems {
            let check = f.new_block();
            let sleep = f.new_block();
            let take = f.new_block();
            f.lock(mu.at(0));
            f.jump(check);
            f.switch_to(check);
            let l = f.load(qlen.at(0));
            let avail = f.bin(spinrace_tir::BinOp::Gt, l, i);
            f.branch(avail, take, sleep);
            f.switch_to(sleep);
            f.wait(cv.at(0), mu.at(0));
            f.jump(check);
            f.switch_to(take);
            let item = f.load(q.at(i));
            f.unlock(mu.at(0));
            let v = f.add(item, 100);
            f.store(mid.at(i), v);
            f.store(mid_ready.at(i), 1);
        }
        f.ret(None);
    });
    // Stage B: clean ad-hoc consumption, unrolled per item.
    let stage_b = mb.function("fr_stage_b", 1, |f| {
        for i in 0..nitems {
            spin_until_nonzero(f, mid_ready.at(i));
            let v = f.load(mid.at(i));
            let r = f.mul(v, 2);
            f.store(ranked.at(i), r);
        }
        f.store(all_done.at(0), 1);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let ta = f.spawn(stage_a, 0);
        let tb = f.spawn(stage_b, 0);
        // Produce into the CV queue, one signal per item (unrolled), with
        // feature-extraction busywork between items so the consumer
        // regularly outruns the producer and has to wait.
        for i in 0..nitems {
            let mut h = f.const_(i);
            for _ in 0..12 {
                h = f.add(h, 3);
                h = f.mul(h, 5);
            }
            let _ = h;
            f.lock(mu.at(0));
            f.store(q.at(i), i + 1);
            let l2 = f.add(i, 1);
            f.store(qlen.at(0), l2);
            f.signal(cv.at(0));
            f.unlock(mu.at(0));
        }
        // Obscure wait on the pipeline's all-done flag (impure condition).
        let head = f.new_block();
        let after = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.call(check_done, &[Operand::Imm(0)]);
        f.branch(v, after, head);
        f.switch_to(after);
        let r = f.load(ranked.at(0));
        f.output(r);
        f.join(ta);
        f.join(tb);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Video encoding: one worker *per frame*; each frame waits for its
/// reference frame's progress flag (clean ad-hoc, per-frame code) and for
/// the reference's deblocking flag through an oversized 9-block loop
/// (the obscure residual, one per frame), then hands a "slot freed"
/// signal back over a library CV.
pub fn x264(_threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("x264");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let freed = mb.global("freed", 1);
    let progress = mb.global("progress", size as u64);
    let dbdone = mb.global("dbdone", size as u64);
    let rows = mb.global("rows", (size * 4) as u64);
    let nframes = size as i64;
    let mut frame_fns = Vec::new();
    for frame in 0..size {
        let i = frame as i64;
        frame_fns.push(mb.function(&format!("frame_{frame}"), 1, |f| {
            if i > 0 {
                // clean ad-hoc dependency on the reference frame
                spin_until_nonzero(f, progress.at(i - 1));
                // obscure deblock-done wait (function-pointer dispatch in
                // the original): 9 blocks, beyond every window
                spin_until_nonzero_sized(f, dbdone.at(i - 1), 9);
            }
            // encode 4 rows, reading the reference frame's rows
            for r in 0..4 {
                let base = if i > 0 {
                    f.load(rows.at((i - 1) * 4 + r))
                } else {
                    f.const_(1)
                };
                let v = f.add(base, r + 1);
                f.store(rows.at(i * 4 + r), v);
            }
            f.store(progress.at(i), 1);
            // recycle the frame slot through the library CV *before*
            // deblocking finishes, so successors genuinely spin on the
            // deblock flag (as they do in the original).
            f.lock(mu.at(0));
            let fr = f.load(freed.at(0));
            let fr2 = f.add(fr, 1);
            f.store(freed.at(0), fr2);
            f.signal(cv.at(0));
            f.unlock(mu.at(0));
            // deblocking pass, then the obscure flag
            let mut d = f.const_(i);
            for _ in 0..8 {
                d = f.add(d, 13);
                d = f.mul(d, 3);
            }
            let _ = d;
            f.store(dbdone.at(i), 1);
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        let tids: Vec<_> = frame_fns.iter().map(|&w| f.spawn(w, 0)).collect();
        // CV wait until every frame slot is recycled.
        let check = f.new_block();
        let sleep = f.new_block();
        let done = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let fr = f.load(freed.at(0));
        let all = f.ge(fr, nframes);
        f.branch(all, done, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(done);
        f.unlock(mu.at(0));
        for t in tids {
            f.join(t);
        }
        let v = f.load(rows.at((nframes - 1) * 4));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Deduplication pipeline: hand-rolled *atomic* ready-flags between
/// stages (release stores + acquire spin loads — DRD handles these,
/// `Helgrind+ lib` floods on them, the spin feature fixes them), plus a
/// small CV completion handshake (the obscure-`nolib` residual).
pub fn dedup(_threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("dedup");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let stages_done = mb.global("stages_done", 1);
    let chunks = mb.global("chunks", size as u64);
    let chunk_ready = mb.global("chunk_ready", size as u64);
    let compressed = mb.global("compressed", size as u64);
    let comp_ready = mb.global("comp_ready", size as u64);
    let written = mb.global("written", size as u64);
    let nitems = size as i64;
    let compressor = mb.function("dd_compress", 1, |f| {
        for i in 0..nitems {
            // atomic acquire spin on the chunker's flag
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load_atomic(chunk_ready.at(i), MemOrder::Acquire);
            f.branch(v, done, head);
            f.switch_to(done);
            let c = f.load(chunks.at(i));
            let z = f.mul(c, 7);
            f.store(compressed.at(i), z);
            f.store_atomic(comp_ready.at(i), 1, MemOrder::Release);
        }
        f.ret(None);
    });
    let writer = mb.function("dd_write", 1, |f| {
        for i in 0..nitems {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load_atomic(comp_ready.at(i), MemOrder::Acquire);
            f.branch(v, done, head);
            f.switch_to(done);
            let z = f.load(compressed.at(i));
            f.store(written.at(i), z);
        }
        f.lock(mu.at(0));
        f.store(stages_done.at(0), 1);
        f.signal(cv.at(0));
        f.unlock(mu.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tc = f.spawn(compressor, 0);
        let tw = f.spawn(writer, 0);
        // Chunking stage in main, atomic release flags (unrolled).
        for i in 0..nitems {
            f.store(chunks.at(i), i * 3 + 1);
            f.store_atomic(chunk_ready.at(i), 1, MemOrder::Release);
        }
        // CV completion handshake.
        let check = f.new_block();
        let sleep = f.new_block();
        let done = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let d = f.load(stages_done.at(0));
        f.branch(d, done, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(done);
        f.unlock(mu.at(0));
        f.join(tc);
        f.join(tw);
        let v = f.load(written.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Online clustering: library locks and barriers carry the data phases;
/// a small hand-rolled spin barrier (the famous custom one) covers only a
/// tiny round counter — few contexts in `lib` mode — while the *one-shot*
/// cross-reads of the centers array are what an ungated pure-HB detector
/// floods on. Two workers keep per-location confirmations below the long
/// MSM threshold.
pub fn streamcluster(_threads: u32, size: u32) -> Module {
    let threads = 2u32; // see docs: one foreign reader per location
    let mut mb = ModuleBuilder::new("streamcluster");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let opened = mb.global("opened", 1);
    let bar = mb.global("bar", 3);
    let sb_mu = mb.global("sb_mu", 1);
    let sb_ctr = mb.global("sb_ctr", 1);
    let centers = mb.global("centers", size as u64);
    let costs = mb.global("costs", threads as u64);
    let nthreads = threads as i64;
    let mut workers = Vec::new();
    for id in 0..threads {
        let lo = (id * size / threads) as i64;
        let hi = ((id + 1) * size / threads) as i64;
        workers.push(mb.function(&format!("sc_worker_{id}"), 1, |f| {
            // Phase 1: write own centers; the *custom* spin barrier is
            // the phase separator (as in the original's hand-rolled
            // barrier), so a detector without its edges sees the
            // one-shot cross-reads below as unordered.
            for i in lo..hi {
                let v = f.const_(i * 2 + 1);
                f.store(centers.at(i), v);
            }
            // The paper's own Barrier() example, verbatim:
            //   Lock(L); counter++; Unlock(L);
            //   while (counter != NUMBER_THREADS) { /* do nothing */ }
            // Reused across rounds by spinning to round * NUMBER_THREADS.
            for round in 1..=2i64 {
                f.lock(sb_mu.at(0));
                let c = f.load(sb_ctr.at(0));
                let c2 = f.add(c, 1);
                f.store(sb_ctr.at(0), c2);
                f.unlock(sb_mu.at(0));
                let target = f.const_(round * nthreads);
                let spin_b = f.new_block();
                let after = f.new_block();
                f.jump(spin_b);
                f.switch_to(spin_b);
                let now = f.load(sb_ctr.at(0));
                let reached = f.ge(now, target);
                f.branch(reached, after, spin_b);
                f.switch_to(after);
            }
            // One-shot cross-reads of every center: ordered only by the
            // custom barrier. The hybrid's long MSM gates these
            // first-occurrence suspicions; an ungated pure-HB detector
            // reports every one of them.
            let mut total = f.const_(0);
            for i in 0..size as i64 {
                let c = f.load(centers.at(i));
                total = f.add(total, c);
            }
            f.store(costs.idx(f.param(0)), total);
            // The library barrier closes the round (uses a barrier, as
            // the characteristics table records).
            f.barrier_wait(bar.at(0));
            // CV notification that this worker opened its center set.
            f.lock(mu.at(0));
            let o = f.load(opened.at(0));
            let o2 = f.add(o, 1);
            f.store(opened.at(0), o2);
            f.signal(cv.at(0));
            f.unlock(mu.at(0));
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), nthreads);
        let tids: Vec<_> = workers
            .iter()
            .enumerate()
            .map(|(i, &w)| f.spawn(w, i as i64))
            .collect();
        let check = f.new_block();
        let sleep = f.new_block();
        let done = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let o = f.load(opened.at(0));
        let all = f.ge(o, nthreads);
        f.branch(all, done, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(done);
        f.unlock(mu.at(0));
        for t in tids {
            f.join(t);
        }
        let c = f.load(costs.at(0));
        f.output(c);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Ray tracing: a lock-protected tile dispatcher plus clean per-tile
/// done-flags consumed by a collector thread (plain ad-hoc spins the spin
/// feature eliminates entirely; `nolib` uses the textbook library and
/// stays clean too, as the paper reports).
pub fn raytrace(threads: u32, size: u32) -> Module {
    let mut mb = ModuleBuilder::new("raytrace");
    let mu = mb.global("mu", 1);
    let next_tile = mb.global("next_tile", 1);
    let tiles = mb.global("tiles", size as u64);
    let tile_done = mb.global("tile_done", size as u64);
    let image = mb.global("image", 1);
    let ntiles = size as i64;
    // Two render passes reuse the per-tile done words (value == pass).
    let worker = mb.function("rt_worker", 1, |f| {
        let head = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.lock(mu.at(0));
        let t = f.load(next_tile.at(0));
        let t2 = f.add(t, 1);
        f.store(next_tile.at(0), t2);
        f.unlock(mu.at(0));
        let have = f.lt(t, 2 * ntiles);
        f.branch(have, body, done);
        f.switch_to(body);
        let tile = f.bin(spinrace_tir::BinOp::Rem, t, ntiles);
        let pass = f.bin(spinrace_tir::BinOp::Div, t, ntiles);
        let v = f.mul(t, 11);
        f.store(tiles.idx(tile), v);
        let p1 = f.add(pass, 1);
        f.store(tile_done.idx(tile), p1);
        f.jump(head);
        f.switch_to(done);
        f.ret(None);
    });
    let collector = mb.function("rt_collector", 1, |f| {
        let mut total = f.const_(0);
        for pass in 0..2i64 {
            for i in 0..ntiles {
                spin_until_ge(f, tile_done.at(i), pass + 1);
                let v = f.load(tiles.at(i));
                total = f.add(total, v);
            }
        }
        f.store(image.at(0), total);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tc = f.spawn(collector, 0);
        let tids: Vec<_> = (0..threads).map(|i| f.spawn(worker, i as i64)).collect();
        for t in tids {
            f.join(t);
        }
        f.join(tc);
        let v = f.load(image.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}
