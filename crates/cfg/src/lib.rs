//! # SpinRace CFG — control-flow analysis over TIR
//!
//! The paper's instrumentation phase "searches the binary code to find all
//! loops" via control-flow analysis. This crate provides the machinery on
//! TIR functions:
//!
//! * [`Cfg`] — successor/predecessor graph and reverse post-order;
//! * [`Dominators`] — immediate dominators (Cooper–Harvey–Kennedy);
//! * [`loops::find_loops`] — natural loops from back edges, with exits and
//!   same-header merging;
//! * [`slice::backward_slice`] — the intra-loop backward slice of a branch
//!   condition, classifying the loads, register dataflow and disqualifying
//!   definitions that the spin-loop criteria are phrased in terms of.

pub mod dom;
pub mod graph;
pub mod loops;
pub mod slice;

pub use dom::Dominators;
pub use graph::Cfg;
pub use loops::{find_candidate_loops, find_loops, NaturalLoop};
pub use slice::{backward_slice, SliceInput, SliceResult};
