//! Immediate dominators via the Cooper–Harvey–Kennedy iterative algorithm
//! ("A Simple, Fast Dominance Algorithm").

use crate::graph::Cfg;
use spinrace_tir::BlockId;

/// Immediate-dominator tree for one CFG.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` — immediate dominator of `b`; the entry's idom is itself;
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    rpo_pos: Vec<usize>,
}

impl Dominators {
    /// Compute dominators for `cfg`.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return Dominators {
                idom,
                rpo_pos: vec![],
            };
        }
        let entry = cfg.rpo[0];
        idom[entry.0 as usize] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            // Walk up the (partially built) dominator tree; deeper RPO
            // positions are further from the entry.
            while a != b {
                while cfg.rpo_pos[a.0 as usize] > cfg.rpo_pos[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed");
                }
                while cfg.rpo_pos[b.0 as usize] > cfg.rpo_pos[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.pred(b) {
                    if !cfg.is_reachable(p) {
                        continue;
                    }
                    if idom[p.0 as usize].is_some() {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, cur, p),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators {
            idom,
            rpo_pos: cfg.rpo_pos.clone(),
        }
    }

    /// Immediate dominator of `b` (entry maps to itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.0 as usize]
    }

    /// Does `a` dominate `b`? (Reflexive; `false` if either is unreachable.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[a.0 as usize] == usize::MAX || self.rpo_pos[b.0 as usize] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = match self.idom[cur.0 as usize] {
                Some(i) => i,
                None => return false,
            };
            if next == cur {
                // reached the entry
                return a == cur;
            }
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cfg;
    use spinrace_tir::{BlockId, ModuleBuilder};
    use std::collections::HashSet;

    /// Naive dominator computation by reachability-without-b: `a dom b` iff
    /// removing `a` from the graph makes `b` unreachable from the entry.
    fn naive_dominates(cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
        if !cfg.is_reachable(a) || !cfg.is_reachable(b) {
            return false;
        }
        if a == b {
            return true;
        }
        let entry = cfg.rpo[0];
        if a == entry {
            return true;
        }
        // BFS from entry avoiding a.
        let mut seen: HashSet<BlockId> = HashSet::new();
        let mut stack = vec![entry];
        seen.insert(entry);
        while let Some(x) = stack.pop() {
            if x == a {
                continue;
            }
            for &s in cfg.succ(x) {
                if s != a && seen.insert(s) {
                    stack.push(s);
                }
            }
        }
        !seen.contains(&b)
    }

    fn build_graph(edges: &[(u32, u32)], n: u32) -> spinrace_tir::Module {
        // Build a function with n blocks where block i branches to its
        // listed successors (1 or 2); blocks with no successors return.
        let mut mb = ModuleBuilder::new("g");
        let g = mb.global("g", 1);
        mb.entry("main", |f| {
            let blocks: Vec<_> = (1..n).map(|_| f.new_block()).collect();
            let block_of = |i: u32| {
                if i == 0 {
                    spinrace_tir::BlockId(0)
                } else {
                    blocks[(i - 1) as usize]
                }
            };
            for i in 0..n {
                f.switch_to(block_of(i));
                let succs: Vec<u32> = edges
                    .iter()
                    .filter(|(a, _)| *a == i)
                    .map(|(_, b)| *b)
                    .collect();
                match succs.len() {
                    0 => f.ret(None),
                    1 => f.jump(block_of(succs[0])),
                    _ => {
                        let c = f.load(g.at(0));
                        f.branch(c, block_of(succs[0]), block_of(succs[1]));
                    }
                }
            }
        });
        mb.finish().unwrap()
    }

    fn check_against_naive(edges: &[(u32, u32)], n: u32) {
        let m = build_graph(edges, n);
        let cfg = Cfg::build(m.function(m.entry));
        let dom = Dominators::compute(&cfg);
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (BlockId(a), BlockId(b));
                assert_eq!(
                    dom.dominates(a, b),
                    naive_dominates(&cfg, a, b),
                    "dominates({a:?},{b:?}) mismatch on {edges:?}"
                );
            }
        }
    }

    #[test]
    fn diamond_dominators() {
        check_against_naive(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
    }

    #[test]
    fn loop_dominators() {
        check_against_naive(&[(0, 1), (1, 2), (2, 1), (1, 3)], 4);
    }

    #[test]
    fn nested_loops() {
        check_against_naive(&[(0, 1), (1, 2), (2, 3), (3, 2), (3, 1), (1, 4)], 5);
    }

    #[test]
    fn irreducible_graph() {
        // Two entries into a cycle: 0->1, 0->2, 1->2, 2->1, 1->3, 2->3
        check_against_naive(&[(0, 1), (0, 2), (1, 2), (2, 1), (1, 3), (2, 3)], 4);
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let m = build_graph(&[(0, 1), (1, 2), (2, 3), (0, 3)], 4);
        let cfg = Cfg::build(m.function(m.entry));
        let dom = Dominators::compute(&cfg);
        for b in 0..4 {
            assert!(dom.dominates(BlockId(0), BlockId(b)));
        }
    }

    proptest::proptest! {
        #[test]
        fn random_graphs_match_naive(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(2..10u32);
            let mut edges = Vec::new();
            // spanning path so most blocks are reachable
            for i in 0..n - 1 {
                if rng.gen_bool(0.8) {
                    edges.push((i, i + 1));
                }
            }
            let extra = rng.gen_range(0..n * 2);
            for _ in 0..extra {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                edges.push((a, b));
            }
            // dedupe, keep at most 2 successors per block
            edges.sort_unstable();
            edges.dedup();
            let mut capped: Vec<(u32, u32)> = Vec::new();
            for e in edges {
                if capped.iter().filter(|(a, _)| *a == e.0).count() < 2 {
                    capped.push(e);
                }
            }
            check_against_naive(&capped, n);
        }
    }
}
