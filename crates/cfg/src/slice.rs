//! Intra-loop backward slicing of branch conditions.
//!
//! The spin-loop criteria are phrased in terms of *what feeds the loop's
//! exit condition*: it must involve at least one load from memory, and it
//! must not be changed by the loop itself. [`backward_slice`] computes the
//! set of in-loop instructions the condition transitively depends on,
//! classifying loads, calls (for the interprocedural window extension) and
//! disqualifying definitions (CAS/RMW/alloc — the loop writing its own
//! condition).

use crate::graph::Cfg;
use spinrace_tir::{BlockId, FuncId, Function, Instr, Operand, Pc, Reg};
use std::collections::{BTreeSet, HashSet};

/// What to slice: the condition of `from_block`'s terminator, within the
/// loop `loop_blocks` of function `func`.
pub struct SliceInput<'a> {
    /// Function being analyzed.
    pub func: &'a Function,
    /// Its id (used to mint `Pc`s).
    pub func_id: FuncId,
    /// Its CFG.
    pub cfg: &'a Cfg,
    /// Member blocks of the loop under analysis.
    pub loop_blocks: &'a BTreeSet<BlockId>,
    /// The exiting block whose branch condition is sliced.
    pub from_block: BlockId,
}

/// Result of slicing one exit condition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SliceResult {
    /// All in-loop instructions in the slice.
    pub instrs: Vec<Pc>,
    /// The loads in the slice — the candidate "condition variables".
    pub loads: Vec<Pc>,
    /// Calls whose return value feeds the condition: `(site, callee)`.
    pub calls: Vec<(Pc, FuncId)>,
    /// True if the condition is (partly) defined by a CAS/RMW/Alloc/Spawn
    /// inside the loop — i.e. the loop *changes* its own condition, which
    /// violates the paper's second criterion.
    pub disqualified: bool,
    /// True if some register feeding the condition is defined before the
    /// loop (a loop-invariant input such as a bound or array base).
    pub uses_external: bool,
}

/// Compute the backward slice of the exit-branch condition of
/// `input.from_block` restricted to the loop.
pub fn backward_slice(input: &SliceInput<'_>) -> SliceResult {
    let mut out = SliceResult::default();
    let block = input.func.block(input.from_block);
    let cond = match block.term.branch_cond() {
        Some(Operand::Reg(r)) => r,
        // Constant or absent condition: nothing feeds it.
        _ => return out,
    };

    // Work items: scan `block` backwards from `pos` looking for a def of
    // `reg`. `pos == instrs.len()` means "from the end".
    let mut work: Vec<(BlockId, usize, Reg)> = vec![(input.from_block, block.instrs.len(), cond)];
    // Full-block scans already performed (termination).
    let mut scanned_full: HashSet<(BlockId, Reg)> = HashSet::new();
    // Instructions already added (dedupe).
    let mut in_slice: HashSet<Pc> = HashSet::new();

    while let Some((b, pos, reg)) = work.pop() {
        let blk = input.func.block(b);
        let mut found = false;
        for i in (0..pos).rev() {
            let instr = &blk.instrs[i];
            if instr.def() != Some(reg) {
                continue;
            }
            found = true;
            let pc = Pc::new(input.func_id, b, i as u32);
            let fresh = in_slice.insert(pc);
            if fresh {
                out.instrs.push(pc);
            }
            match instr {
                Instr::Const { .. } | Instr::AddrOf { .. } => {}
                Instr::Mov { src, .. } if fresh => {
                    work.push((b, i, *src));
                }
                Instr::Bin { a, b: bb, .. } if fresh => {
                    for o in [a, bb] {
                        if let Operand::Reg(r) = o {
                            work.push((b, i, *r));
                        }
                    }
                }
                Instr::Un {
                    a: Operand::Reg(r), ..
                } if fresh => {
                    work.push((b, i, *r));
                }
                Instr::Load { addr, .. } if fresh => {
                    out.loads.push(pc);
                    let mut regs = Vec::new();
                    addr.regs(&mut regs);
                    for r in regs {
                        work.push((b, i, r));
                    }
                }
                Instr::Call { func, args, .. } if fresh => {
                    out.calls.push((pc, *func));
                    for o in args {
                        if let Operand::Reg(r) = o {
                            work.push((b, i, *r));
                        }
                    }
                }
                Instr::Cas { .. }
                | Instr::Rmw { .. }
                | Instr::Alloc { .. }
                | Instr::Spawn { .. } => {
                    out.disqualified = true;
                }
                _ => {}
            }
            break;
        }
        if !found {
            // Not defined in this block segment: propagate to predecessors.
            for &p in input.cfg.pred(b) {
                if !input.cfg.is_reachable(p) {
                    continue;
                }
                if input.loop_blocks.contains(&p) {
                    if scanned_full.insert((p, reg)) {
                        work.push((p, input.func.block(p).instrs.len(), reg));
                    }
                } else {
                    // Value flows in from before the loop.
                    out.uses_external = true;
                }
            }
        }
    }

    out.instrs.sort_unstable();
    out.loads.sort_unstable();
    out.calls.sort_unstable();
    out.loads.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::loops_of;
    use spinrace_tir::{MemOrder, ModuleBuilder, Operand, RmwOp};

    fn slice_first_loop(m: &spinrace_tir::Module) -> SliceResult {
        let f = m.function(m.entry);
        let (cfg, _, loops) = loops_of(f);
        assert_eq!(loops.len(), 1, "expected exactly one loop");
        let l = &loops[0];
        let exiting: Vec<_> = l.exiting_blocks().into_iter().collect();
        assert_eq!(exiting.len(), 1);
        backward_slice(&SliceInput {
            func: f,
            func_id: m.entry,
            cfg: &cfg,
            loop_blocks: &l.blocks,
            from_block: exiting[0],
        })
    }

    #[test]
    fn direct_load_condition() {
        let mut mb = ModuleBuilder::new("s");
        let flag = mb.global("flag", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let s = slice_first_loop(&m);
        assert_eq!(s.loads.len(), 1);
        assert!(!s.disqualified);
        assert!(s.calls.is_empty());
    }

    #[test]
    fn comparison_of_load_against_bound() {
        // while (counter != n) {} with n computed before the loop
        let mut mb = ModuleBuilder::new("s");
        let counter = mb.global("counter", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let done = f.new_block();
            let n = f.const_(4);
            f.jump(head);
            f.switch_to(head);
            let v = f.load(counter.at(0));
            let c = f.ne(v, n);
            f.branch(c, head, done);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let s = slice_first_loop(&m);
        assert_eq!(s.loads.len(), 1);
        assert!(s.uses_external, "bound register n is defined before loop");
        assert!(!s.disqualified);
    }

    #[test]
    fn counter_loop_has_no_loads() {
        // for (i = 0; i < 10; i++) {} — no load feeds the condition
        let mut mb = ModuleBuilder::new("s");
        mb.entry("main", |f| {
            let head = f.new_block();
            let body = f.new_block();
            let done = f.new_block();
            let i = f.const_(0);
            f.jump(head);
            f.switch_to(head);
            let c = f.lt(i, 10);
            f.branch(c, body, done);
            f.switch_to(body);
            let i2 = f.add(i, 1);
            f.mov(i, i2);
            f.jump(head);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let s = slice_first_loop(&m);
        assert!(s.loads.is_empty());
        assert!(!s.disqualified);
    }

    #[test]
    fn cas_condition_is_disqualified() {
        // while (cas(lock, 0, 1) != 0) {} — classic TAS, not a *read* loop
        let mut mb = ModuleBuilder::new("s");
        let lock = mb.global("lock", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let old = f.cas(lock.at(0), 0, 1, MemOrder::AcqRel);
            f.branch(old, head, done);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let s = slice_first_loop(&m);
        assert!(s.disqualified);
    }

    #[test]
    fn rmw_condition_is_disqualified() {
        let mut mb = ModuleBuilder::new("s");
        let x = mb.global("x", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let old = f.rmw(RmwOp::Add, x.at(0), 1, MemOrder::SeqCst);
            let c = f.lt(old, 10);
            f.branch(c, head, done);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let s = slice_first_loop(&m);
        assert!(s.disqualified);
    }

    #[test]
    fn call_in_condition_is_recorded() {
        let mut mb = ModuleBuilder::new("s");
        let flag = mb.global("flag", 1);
        let check = mb.function("check", 0, |f| {
            let v = f.load(flag.at(0));
            f.ret(Some(Operand::Reg(v)));
        });
        mb.entry("main", |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.call(check, &[]);
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let s = slice_first_loop(&m);
        assert_eq!(s.calls.len(), 1);
        assert_eq!(s.calls[0].1, check);
        // Loads *inside the callee* are not in this intra-procedural slice;
        // spinfind adds them via the interprocedural extension.
        assert!(s.loads.is_empty());
    }

    #[test]
    fn indexed_load_pulls_index_into_slice() {
        // while (!arr[i]) {} — i defined before the loop
        let mut mb = ModuleBuilder::new("s");
        let arr = mb.global("arr", 8);
        mb.entry("main", |f| {
            let i = f.const_(3);
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(arr.idx(i));
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let s = slice_first_loop(&m);
        assert_eq!(s.loads.len(), 1);
        assert!(s.uses_external);
    }

    #[test]
    fn constant_condition_yields_empty_slice() {
        let mut mb = ModuleBuilder::new("s");
        let g = mb.global("g", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let body = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            f.branch(Operand::Imm(1), body, done);
            f.switch_to(body);
            let v = f.load(g.at(0));
            let _ = v;
            f.jump(head);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let f = m.function(m.entry);
        let (cfg, _, loops) = loops_of(f);
        let l = &loops[0];
        let s = backward_slice(&SliceInput {
            func: f,
            func_id: m.entry,
            cfg: &cfg,
            loop_blocks: &l.blocks,
            from_block: BlockId(1),
        });
        assert!(s.instrs.is_empty() && s.loads.is_empty());
    }
}
