//! CFG construction: successors, predecessors, reverse post-order.

use spinrace_tir::{BlockId, Function};

/// The control-flow graph of one function.
///
/// Blocks unreachable from the entry are excluded from `rpo` (and get
/// `rpo_pos == usize::MAX`); analyses treat them as dead code, which is
/// also how a binary-level tool would see never-branched-to bytes.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Successor lists, indexed by block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor lists, indexed by block.
    pub preds: Vec<Vec<BlockId>>,
    /// Reachable blocks in reverse post-order (entry first).
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` if unreachable).
    pub rpo_pos: Vec<usize>,
}

impl Cfg {
    /// Build the CFG of `func`.
    pub fn build(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (b, block) in func.iter_blocks() {
            for s in block.term.successors() {
                succs[b.0 as usize].push(s);
                preds[s.0 as usize].push(b);
            }
        }
        // Iterative DFS post-order from the entry.
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack of (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(Function::ENTRY, 0)];
        visited[Function::ENTRY.0 as usize] = true;
        while let Some((b, i)) = stack.pop() {
            let ss = &succs[b.0 as usize];
            if i < ss.len() {
                stack.push((b, i + 1));
                let s = ss[i];
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_pos[b.0 as usize] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_pos,
        }
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the function has no blocks (cannot happen for valid IR).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Is `b` reachable from the entry?
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.0 as usize] != usize::MAX
    }

    /// Successors of `b`.
    pub fn succ(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// Predecessors of `b`.
    pub fn pred(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::ModuleBuilder;

    /// diamond: 0 -> {1,2} -> 3
    fn diamond() -> spinrace_tir::Module {
        let mut mb = ModuleBuilder::new("d");
        mb.entry("main", |f| {
            let b1 = f.new_block();
            let b2 = f.new_block();
            let b3 = f.new_block();
            let c = f.const_(1);
            f.branch(c, b1, b2);
            f.switch_to(b1);
            f.jump(b3);
            f.switch_to(b2);
            f.jump(b3);
            f.switch_to(b3);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    #[test]
    fn diamond_edges() {
        let m = diamond();
        let cfg = Cfg::build(m.function(m.entry));
        assert_eq!(cfg.succ(BlockId(0)).len(), 2);
        assert_eq!(cfg.pred(BlockId(3)).len(), 2);
        assert_eq!(cfg.rpo.len(), 4);
        assert_eq!(cfg.rpo[0], BlockId(0));
        // join block must come after both arms in RPO
        let pos = |b: u32| cfg.rpo_pos[b as usize];
        assert!(pos(3) > pos(1) && pos(3) > pos(2));
    }

    #[test]
    fn unreachable_blocks_are_excluded_from_rpo() {
        let mut mb = ModuleBuilder::new("u");
        mb.entry("main", |f| {
            let dead = f.new_block();
            f.ret(None);
            f.switch_to(dead);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let cfg = Cfg::build(m.function(m.entry));
        assert_eq!(cfg.rpo.len(), 1);
        assert!(!cfg.is_reachable(BlockId(1)));
    }

    #[test]
    fn self_loop_edge() {
        let mut mb = ModuleBuilder::new("s");
        let g = mb.global("g", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let out = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(g.at(0));
            f.branch(v, out, head);
            f.switch_to(out);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let cfg = Cfg::build(m.function(m.entry));
        assert!(cfg.succ(BlockId(1)).contains(&BlockId(1)));
        assert!(cfg.pred(BlockId(1)).contains(&BlockId(1)));
    }
}
