//! Natural-loop detection from back edges.
//!
//! A back edge is an edge `n -> h` where `h` dominates `n`. The natural
//! loop of a back edge is `h` plus every block that can reach `n` without
//! passing through `h`. Back edges sharing a header are merged into one
//! loop — the classic construction, and what the paper's "find all loops"
//! step produces from binary control flow.

use crate::dom::Dominators;
use crate::graph::Cfg;
use spinrace_tir::{BlockId, Function, Terminator};
use std::collections::BTreeSet;

/// One natural loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (single entry point).
    pub header: BlockId,
    /// All member blocks (header included), ascending.
    pub blocks: BTreeSet<BlockId>,
    /// The back edges `(latch, header)` that define the loop.
    pub back_edges: Vec<(BlockId, BlockId)>,
    /// Exit edges `(from_inside, to_outside)`.
    pub exits: Vec<(BlockId, BlockId)>,
}

impl NaturalLoop {
    /// Number of member blocks — the paper's loop-size metric before
    /// adding condition-callee weight.
    pub fn size(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Is `b` part of the loop?
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Blocks inside the loop whose terminator has a successor outside
    /// (the blocks whose branch conditions are loop *exit conditions*).
    pub fn exiting_blocks(&self) -> BTreeSet<BlockId> {
        self.exits.iter().map(|(from, _)| *from).collect()
    }
}

/// Find all natural loops of `func`, merging same-header back edges.
/// Loops are returned sorted by header id.
pub fn find_loops(func: &Function, cfg: &Cfg, dom: &Dominators) -> Vec<NaturalLoop> {
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for (b, _) in func.iter_blocks() {
        if !cfg.is_reachable(b) {
            continue;
        }
        for &s in cfg.succ(b) {
            if dom.dominates(s, b) {
                // back edge b -> s
                let header = s;
                match loops.iter_mut().find(|l| l.header == header) {
                    Some(l) => {
                        l.back_edges.push((b, header));
                        grow_loop(cfg, header, b, &mut l.blocks);
                    }
                    None => {
                        let mut blocks = BTreeSet::new();
                        blocks.insert(header);
                        grow_loop(cfg, header, b, &mut blocks);
                        loops.push(NaturalLoop {
                            header,
                            blocks,
                            back_edges: vec![(b, header)],
                            exits: Vec::new(),
                        });
                    }
                }
            }
        }
    }
    // Compute exit edges.
    for l in &mut loops {
        for &b in &l.blocks {
            for &s in cfg.succ(b) {
                if !l.blocks.contains(&s) {
                    l.exits.push((b, s));
                }
            }
        }
        l.exits.sort_unstable();
        l.exits.dedup();
        l.back_edges.sort_unstable();
        l.back_edges.dedup();
    }
    loops.sort_by_key(|l| l.header);
    loops
}

/// Add to `blocks` every block that reaches `latch` without passing
/// through `header` (standard worklist walking predecessors).
fn grow_loop(cfg: &Cfg, header: BlockId, latch: BlockId, blocks: &mut BTreeSet<BlockId>) {
    let mut work = vec![latch];
    while let Some(b) = work.pop() {
        if b == header || !blocks.insert(b) {
            continue;
        }
        for &p in cfg.pred(b) {
            if cfg.is_reachable(p) {
                work.push(p);
            }
        }
    }
}

/// Convenience: all loops of a function, building the CFG and dominators
/// internally.
pub fn loops_of(func: &Function) -> (Cfg, Dominators, Vec<NaturalLoop>) {
    let cfg = Cfg::build(func);
    let dom = Dominators::compute(&cfg);
    let loops = find_loops(func, &cfg, &dom);
    (cfg, dom, loops)
}

/// All *candidate* loops: one natural loop per back edge **plus** the
/// merged union per header, deduplicated by `(header, blocks)`.
///
/// The spin-loop analysis needs per-back-edge candidates because a pure
/// spinning read sub-loop can share its header with a larger retry loop
/// that is disqualified (the classic test-and-test-and-set lock: the inner
/// `while (*lock != 0)` self-loop is a spinning read loop, while the outer
/// CAS retry loop is not). Merging would hide the inner loop.
pub fn find_candidate_loops(func: &Function, cfg: &Cfg, dom: &Dominators) -> Vec<NaturalLoop> {
    let mut candidates: Vec<NaturalLoop> = Vec::new();
    // Per-back-edge loops.
    for (b, _) in func.iter_blocks() {
        if !cfg.is_reachable(b) {
            continue;
        }
        for &s in cfg.succ(b) {
            if dom.dominates(s, b) {
                let header = s;
                let mut blocks = BTreeSet::new();
                blocks.insert(header);
                grow_loop(cfg, header, b, &mut blocks);
                candidates.push(NaturalLoop {
                    header,
                    blocks,
                    back_edges: vec![(b, header)],
                    exits: Vec::new(),
                });
            }
        }
    }
    // Merged unions.
    candidates.extend(find_loops(func, cfg, dom));
    // Dedupe by (header, blocks); keep the first occurrence.
    let mut seen: Vec<(BlockId, BTreeSet<BlockId>)> = Vec::new();
    candidates.retain(|l| {
        let key = (l.header, l.blocks.clone());
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
    // (Re)compute exits for every candidate.
    for l in &mut candidates {
        l.exits.clear();
        for &b in &l.blocks {
            for &s in cfg.succ(b) {
                if !l.blocks.contains(&s) {
                    l.exits.push((b, s));
                }
            }
        }
        l.exits.sort_unstable();
        l.exits.dedup();
    }
    candidates.sort_by_key(|l| (l.header, l.blocks.len()));
    candidates
}

/// Does the function contain any `Exit` terminator inside the given loop?
/// (Such loops can end the program from within; they are still loops.)
pub fn loop_has_exit_terminator(func: &Function, l: &NaturalLoop) -> bool {
    l.blocks
        .iter()
        .any(|b| matches!(func.block(*b).term, Terminator::Exit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::ModuleBuilder;

    fn spin_module() -> spinrace_tir::Module {
        let mut mb = ModuleBuilder::new("l");
        let flag = mb.global("flag", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let body = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, body);
            f.switch_to(body);
            f.yield_();
            f.jump(head);
            f.switch_to(done);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    #[test]
    fn two_block_spin_loop_detected() {
        let m = spin_module();
        let f = m.function(m.entry);
        let (_, _, loops) = loops_of(f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.size(), 2);
        assert_eq!(l.back_edges, vec![(BlockId(2), BlockId(1))]);
        assert_eq!(l.exits, vec![(BlockId(1), BlockId(3))]);
        assert_eq!(l.exiting_blocks().len(), 1);
    }

    #[test]
    fn nested_loops_found_separately() {
        let mut mb = ModuleBuilder::new("n");
        let g = mb.global("g", 2);
        mb.entry("main", |f| {
            let outer = f.new_block();
            let inner = f.new_block();
            let after_inner = f.new_block();
            let done = f.new_block();
            f.jump(outer);
            f.switch_to(outer);
            let a = f.load(g.at(0));
            f.branch(a, done, inner);
            f.switch_to(inner);
            let b = f.load(g.at(1));
            f.branch(b, after_inner, inner);
            f.switch_to(after_inner);
            f.jump(outer);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let (_, _, loops) = loops_of(m.function(m.entry));
        assert_eq!(loops.len(), 2);
        // inner: {2}; outer: {1,2,3}
        let inner = loops.iter().find(|l| l.header == BlockId(2)).unwrap();
        let outer = loops.iter().find(|l| l.header == BlockId(1)).unwrap();
        assert_eq!(inner.size(), 1);
        assert_eq!(outer.size(), 3);
        assert!(outer.blocks.is_superset(&inner.blocks));
    }

    #[test]
    fn same_header_back_edges_merge() {
        // while with continue: two latches to the same header
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 2);
        mb.entry("main", |f| {
            let head = f.new_block();
            let a = f.new_block();
            let b = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let c = f.load(g.at(0));
            f.branch(c, done, a);
            f.switch_to(a);
            let d = f.load(g.at(1));
            f.branch(d, head, b); // continue edge
            f.switch_to(b);
            f.jump(head); // normal latch
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let (_, _, loops) = loops_of(m.function(m.entry));
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].back_edges.len(), 2);
        assert_eq!(loops[0].size(), 3);
    }

    #[test]
    fn candidate_loops_expose_ttas_inner_spin() {
        // test: v=load; branch v!=0 ? test : try   (self back edge)
        // try:  old=cas;  branch old!=0 ? test : done  (back edge to test)
        let mut mb = ModuleBuilder::new("ttas");
        let lock = mb.global("lock", 1);
        mb.entry("main", |f| {
            let test = f.new_block();
            let try_b = f.new_block();
            let done = f.new_block();
            f.jump(test);
            f.switch_to(test);
            let v = f.load(lock.at(0));
            f.branch(v, test, try_b);
            f.switch_to(try_b);
            let old = f.cas(lock.at(0), 0, 1, spinrace_tir::MemOrder::AcqRel);
            f.branch(old, test, done);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let func = m.function(m.entry);
        let cfg = Cfg::build(func);
        let dom = Dominators::compute(&cfg);
        // Merged view: one loop {test, try}.
        let merged = find_loops(func, &cfg, &dom);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].blocks.len(), 2);
        // Candidate view: the inner {test} self-loop appears too.
        let cands = find_candidate_loops(func, &cfg, &dom);
        assert_eq!(cands.len(), 2);
        let small = cands.iter().find(|l| l.blocks.len() == 1).unwrap();
        assert_eq!(small.header, BlockId(1));
        assert_eq!(small.exits, vec![(BlockId(1), BlockId(2))]);
        let big = cands.iter().find(|l| l.blocks.len() == 2).unwrap();
        assert_eq!(big.header, BlockId(1));
    }

    #[test]
    fn candidate_loops_dedupe_simple_loop() {
        let m = spin_module();
        let func = m.function(m.entry);
        let cfg = Cfg::build(func);
        let dom = Dominators::compute(&cfg);
        let cands = find_candidate_loops(func, &cfg, &dom);
        // single back edge → per-edge loop equals merged loop, deduped.
        assert_eq!(cands.len(), 1);
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut mb = ModuleBuilder::new("s");
        mb.entry("main", |f| {
            let b = f.new_block();
            f.jump(b);
            f.switch_to(b);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let (_, _, loops) = loops_of(m.function(m.entry));
        assert!(loops.is_empty());
    }

    proptest::proptest! {
        /// Every member of a natural loop can reach a latch without leaving
        /// the loop, and the header dominates every member.
        #[test]
        fn loop_membership_invariants(seed in 0u64..300) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(3..9u32);
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for i in 0..n - 1 {
                edges.push((i, i + 1));
            }
            for _ in 0..rng.gen_range(1..6) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                edges.push((a, b));
            }
            edges.sort_unstable();
            edges.dedup();
            let mut capped: Vec<(u32, u32)> = Vec::new();
            for e in edges {
                if capped.iter().filter(|(a, _)| *a == e.0).count() < 2 {
                    capped.push(e);
                }
            }
            // Build the module (same trick as dom tests).
            let mut mb = ModuleBuilder::new("p");
            let g = mb.global("g", 1);
            mb.entry("main", |f| {
                let blocks: Vec<_> = (1..n).map(|_| f.new_block()).collect();
                let block_of = |i: u32| if i == 0 { BlockId(0) } else { blocks[(i - 1) as usize] };
                for i in 0..n {
                    f.switch_to(block_of(i));
                    let succs: Vec<u32> =
                        capped.iter().filter(|(a, _)| *a == i).map(|(_, b)| *b).collect();
                    match succs.len() {
                        0 => f.ret(None),
                        1 => f.jump(block_of(succs[0])),
                        _ => {
                            let c = f.load(g.at(0));
                            f.branch(c, block_of(succs[0]), block_of(succs[1]));
                        }
                    }
                }
            });
            let m = mb.finish().unwrap();
            let func = m.function(m.entry);
            let cfg = Cfg::build(func);
            let dom = Dominators::compute(&cfg);
            let loops = find_loops(func, &cfg, &dom);
            for l in &loops {
                for &b in &l.blocks {
                    proptest::prop_assert!(dom.dominates(l.header, b),
                        "header {:?} must dominate member {:?}", l.header, b);
                }
                for &(latch, h) in &l.back_edges {
                    proptest::prop_assert_eq!(h, l.header);
                    proptest::prop_assert!(l.blocks.contains(&latch));
                }
                for &(from, to) in &l.exits {
                    proptest::prop_assert!(l.blocks.contains(&from) && !l.blocks.contains(&to));
                }
            }
        }
    }
}
