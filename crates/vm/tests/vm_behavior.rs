//! End-to-end behavioural tests of the VM: program semantics, library
//! synchronization, spin-loop runtime tracking, determinism, and failure
//! modes.

use spinrace_spinfind::SpinFinder;
use spinrace_tir::{MemOrder, Module, ModuleBuilder, Operand, RmwOp};
use spinrace_vm::{run_module, Event, NullSink, RecordingSink, RunSummary, VmConfig, VmError};

fn run(m: &Module, cfg: VmConfig) -> (RunSummary, Vec<Event>) {
    let mut sink = RecordingSink::default();
    let summary = run_module(m, cfg, &mut sink).expect("run ok");
    (summary, sink.events)
}

fn outputs(m: &Module, cfg: VmConfig) -> Vec<i64> {
    run(m, cfg).0.outputs.iter().map(|(_, v)| *v).collect()
}

#[test]
fn arithmetic_and_output() {
    let mut mb = ModuleBuilder::new("arith");
    mb.entry("main", |f| {
        let a = f.const_(6);
        let b = f.const_(7);
        let c = f.mul(a, b);
        f.output(c);
        let d = f.sub(c, 2);
        f.output(d);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    assert_eq!(outputs(&m, VmConfig::round_robin()), vec![42, 40]);
}

#[test]
fn memory_store_load_round_trip() {
    let mut mb = ModuleBuilder::new("mem");
    let g = mb.global("g", 4);
    mb.entry("main", |f| {
        f.store(g.at(2), 11);
        let v = f.load(g.at(2));
        f.output(v);
        let z = f.load(g.at(0));
        f.output(z);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    assert_eq!(outputs(&m, VmConfig::round_robin()), vec![11, 0]);
}

#[test]
fn global_initializers_are_visible() {
    let mut mb = ModuleBuilder::new("init");
    let g = mb.global_init("g", 3, vec![5, 6]);
    mb.entry("main", |f| {
        let a = f.load(g.at(0));
        let b = f.load(g.at(1));
        let c = f.load(g.at(2));
        let s1 = f.add(a, b);
        let s = f.add(s1, c);
        f.output(s);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    assert_eq!(outputs(&m, VmConfig::round_robin()), vec![11]);
}

#[test]
fn heap_alloc_and_pointer_access() {
    let mut mb = ModuleBuilder::new("heap");
    mb.entry("main", |f| {
        let p = f.alloc(4);
        f.store(
            spinrace_tir::AddrExpr::Based { base: p, disp: 3 },
            Operand::Imm(9),
        );
        let v = f.load(spinrace_tir::AddrExpr::Based { base: p, disp: 3 });
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    assert_eq!(outputs(&m, VmConfig::round_robin()), vec![9]);
}

#[test]
fn call_and_return_value() {
    let mut mb = ModuleBuilder::new("call");
    let dbl = mb.function("dbl", 1, |f| {
        let v = f.mul(f.param(0), 2);
        f.ret(Some(Operand::Reg(v)));
    });
    mb.entry("main", |f| {
        let v = f.call(dbl, &[Operand::Imm(21)]);
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    assert_eq!(outputs(&m, VmConfig::round_robin()), vec![42]);
}

#[test]
fn stack_context_distinguishes_call_sites() {
    // The same library function touching the same address from two
    // different call sites must yield distinct Helgrind-style stack
    // hashes, while repeated events from one site agree — the contract
    // the O(1) incremental `Frame::ctx` hash must uphold.
    let mut mb = ModuleBuilder::new("stacks");
    let g = mb.global("g", 1);
    let lib = mb.function("lib", 1, |f| {
        let v = f.load(g.at(0));
        let v2 = f.add(v, 1);
        f.store(g.at(0), v2);
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.call(lib, &[Operand::Imm(0)]);
        f.call(lib, &[Operand::Imm(0)]);
        let v = f.load(g.at(0));
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let (_, events) = run(&m, VmConfig::round_robin());
    let lib_reads: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::Read { stack, .. } => Some(*stack),
            _ => None,
        })
        .collect();
    // Two lib-internal reads (one per call site) and the main-frame read.
    assert_eq!(lib_reads.len(), 3);
    assert_ne!(
        lib_reads[0], lib_reads[1],
        "distinct call sites must hash differently"
    );
    assert_ne!(lib_reads[0], lib_reads[2]);
    // Within one call, the read and the write share the frame context.
    let lib_writes: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::Write { stack, .. } => Some(*stack),
            _ => None,
        })
        .collect();
    assert_eq!(lib_writes.len(), 2);
    assert_eq!(lib_reads[0], lib_writes[0]);
    assert_eq!(lib_reads[1], lib_writes[1]);
}

#[test]
fn spawn_join_passes_argument() {
    let mut mb = ModuleBuilder::new("spawn");
    let g = mb.global("g", 1);
    let worker = mb.function("worker", 1, |f| {
        let v = f.add(f.param(0), 100);
        f.store(g.at(0), v);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(worker, 7);
        f.join(t);
        let v = f.load(g.at(0));
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    for cfg in [
        VmConfig::round_robin(),
        VmConfig::random(1),
        VmConfig::random(99),
    ] {
        assert_eq!(outputs(&m, cfg), vec![107]);
    }
}

#[test]
fn join_emits_event_even_for_already_finished_thread() {
    let mut mb = ModuleBuilder::new("latejoin");
    let worker = mb.function("worker", 1, |f| {
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(worker, 0);
        // Busy-wait a bit so the child can finish first under round-robin.
        for _ in 0..8 {
            f.nop();
        }
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let (_, events) = run(&m, VmConfig::round_robin());
    assert!(events.iter().any(|e| matches!(
        e,
        Event::Join {
            parent: 0,
            child: 1,
            ..
        }
    )));
}

/// Two threads increment a counter under a mutex; the result must be exact
/// under every scheduler (mutual exclusion works).
fn locked_counter_module(iters: i64) -> Module {
    let mut mb = ModuleBuilder::new("mutex");
    let mu = mb.global("mu", 1);
    let counter = mb.global("counter", 1);
    let worker = mb.function("worker", 1, |f| {
        let body = f.new_block();
        let check = f.new_block();
        let done = f.new_block();
        let i = f.const_(0);
        f.jump(check);
        f.switch_to(check);
        let c = f.lt(i, iters);
        f.branch(c, body, done);
        f.switch_to(body);
        f.lock(mu.at(0));
        let v = f.load(counter.at(0));
        let v2 = f.add(v, 1);
        f.store(counter.at(0), v2);
        f.unlock(mu.at(0));
        let i2 = f.add(i, 1);
        f.mov(i, i2);
        f.jump(check);
        f.switch_to(done);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(worker, 0);
        let t2 = f.spawn(worker, 1);
        f.join(t1);
        f.join(t2);
        let v = f.load(counter.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

#[test]
fn mutex_provides_mutual_exclusion() {
    let m = locked_counter_module(10);
    for seed in 0..10 {
        assert_eq!(outputs(&m, VmConfig::random(seed)), vec![20], "seed {seed}");
    }
    assert_eq!(outputs(&m, VmConfig::round_robin()), vec![20]);
}

#[test]
fn mutex_lock_unlock_events_alternate_per_thread() {
    let m = locked_counter_module(3);
    let (_, events) = run(&m, VmConfig::random(7));
    let mut depth = 0i32;
    for e in &events {
        match e {
            Event::MutexLock { .. } => {
                depth += 1;
                assert_eq!(depth, 1, "no two threads hold the mutex");
            }
            Event::MutexUnlock { .. } => {
                depth -= 1;
                assert_eq!(depth, 0);
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0);
}

#[test]
fn condvar_handoff() {
    // Classic producer/consumer handshake through CV + mutex.
    let mut mb = ModuleBuilder::new("cv");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let ready = mb.global("ready", 1);
    let data = mb.global("data", 1);
    let consumer = mb.function("consumer", 1, |f| {
        let check = f.new_block();
        let sleep = f.new_block();
        let done = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let r = f.load(ready.at(0));
        f.branch(r, done, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.unlock(mu.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(consumer, 0);
        f.store(data.at(0), 33);
        f.lock(mu.at(0));
        f.store(ready.at(0), 1);
        f.signal(cv.at(0));
        f.unlock(mu.at(0));
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    for seed in 0..20 {
        assert_eq!(outputs(&m, VmConfig::random(seed)), vec![33], "seed {seed}");
    }
    let (_, events) = run(&m, VmConfig::round_robin());
    assert!(events.iter().any(|e| matches!(e, Event::CondSignal { .. })));
    // The consumer either saw ready=1 without sleeping or got a
    // CondWaitReturn; in the round-robin interleaving the consumer runs
    // first and must sleep.
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::CondWaitReturn { .. })));
}

#[test]
fn condvar_broadcast_wakes_all() {
    let mut mb = ModuleBuilder::new("bcast");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let go = mb.global("go", 1);
    let done_count = mb.global("done_count", 1);
    let waiter = mb.function("waiter", 1, |f| {
        let check = f.new_block();
        let sleep = f.new_block();
        let done = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let g = f.load(go.at(0));
        f.branch(g, done, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(done);
        let d = f.load(done_count.at(0));
        let d2 = f.add(d, 1);
        f.store(done_count.at(0), d2);
        f.unlock(mu.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(waiter, 0);
        let t2 = f.spawn(waiter, 1);
        let t3 = f.spawn(waiter, 2);
        for _ in 0..30 {
            f.yield_();
        }
        f.lock(mu.at(0));
        f.store(go.at(0), 1);
        f.broadcast(cv.at(0));
        f.unlock(mu.at(0));
        f.join(t1);
        f.join(t2);
        f.join(t3);
        let v = f.load(done_count.at(0));
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    for seed in 0..10 {
        assert_eq!(outputs(&m, VmConfig::random(seed)), vec![3], "seed {seed}");
    }
}

#[test]
fn barrier_synchronizes_phases() {
    // Each of 3 threads writes its slot, barrier, then sums all slots.
    let mut mb = ModuleBuilder::new("barrier");
    let bar = mb.global("bar", 1);
    let slots = mb.global("slots", 3);
    let sums = mb.global("sums", 3);
    let worker = mb.function("worker", 1, |f| {
        let id = f.param(0);
        let hundred = f.const_(100);
        let v = f.add(id, hundred);
        f.store(slots.idx(id), v);
        f.barrier_wait(bar.at(0));
        let mut total = f.const_(0);
        for i in 0..3 {
            let s = f.load(slots.at(i));
            total = f.add(total, s);
        }
        f.store(sums.idx(id), total);
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), 3);
        let t1 = f.spawn(worker, 0);
        let t2 = f.spawn(worker, 1);
        let t3 = f.spawn(worker, 2);
        f.join(t1);
        f.join(t2);
        f.join(t3);
        for i in 0..3 {
            let s = f.load(sums.at(i));
            f.output(s);
        }
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    // 100+101+102 = 303 for every thread, under every schedule.
    for seed in 0..10 {
        assert_eq!(
            outputs(&m, VmConfig::random(seed)),
            vec![303, 303, 303],
            "seed {seed}"
        );
    }
}

#[test]
fn barrier_events_carry_generation() {
    let mut mb = ModuleBuilder::new("bargen");
    let bar = mb.global("bar", 1);
    let worker = mb.function("worker", 1, |f| {
        f.barrier_wait(bar.at(0));
        f.barrier_wait(bar.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), 2);
        let t = f.spawn(worker, 0);
        f.barrier_wait(bar.at(0));
        f.barrier_wait(bar.at(0));
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let (_, events) = run(&m, VmConfig::round_robin());
    let gens: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::BarrierLeave { gen, .. } => Some(*gen),
            _ => None,
        })
        .collect();
    assert_eq!(gens, vec![0, 0, 1, 1]);
}

#[test]
fn semaphore_bounds_concurrency() {
    // Binary semaphore used as a lock.
    let mut mb = ModuleBuilder::new("sem");
    let sem = mb.global("sem", 1);
    let counter = mb.global("counter", 1);
    let worker = mb.function("worker", 1, |f| {
        let body = f.new_block();
        let check = f.new_block();
        let done = f.new_block();
        let i = f.const_(0);
        f.jump(check);
        f.switch_to(check);
        let c = f.lt(i, 5);
        f.branch(c, body, done);
        f.switch_to(body);
        f.sem_wait(sem.at(0));
        let v = f.load(counter.at(0));
        let v2 = f.add(v, 1);
        f.store(counter.at(0), v2);
        f.sem_post(sem.at(0));
        let i2 = f.add(i, 1);
        f.mov(i, i2);
        f.jump(check);
        f.switch_to(done);
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.sem_init(sem.at(0), 1);
        let t1 = f.spawn(worker, 0);
        let t2 = f.spawn(worker, 1);
        f.join(t1);
        f.join(t2);
        let v = f.load(counter.at(0));
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    for seed in 0..10 {
        assert_eq!(outputs(&m, VmConfig::random(seed)), vec![10], "seed {seed}");
    }
}

#[test]
fn rmw_and_cas_are_atomic_steps() {
    let mut mb = ModuleBuilder::new("atom");
    let x = mb.global("x", 1);
    let worker = mb.function("worker", 1, |f| {
        let check = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        let i = f.const_(0);
        f.jump(check);
        f.switch_to(check);
        let c = f.lt(i, 50);
        f.branch(c, body, done);
        f.switch_to(body);
        f.rmw(RmwOp::Add, x.at(0), 1, MemOrder::SeqCst);
        let i2 = f.add(i, 1);
        f.mov(i, i2);
        f.jump(check);
        f.switch_to(done);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(worker, 0);
        let t2 = f.spawn(worker, 1);
        f.join(t1);
        f.join(t2);
        let v = f.load(x.at(0));
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    for seed in 0..5 {
        assert_eq!(
            outputs(&m, VmConfig::random(seed)),
            vec![100],
            "seed {seed}"
        );
    }
}

#[test]
fn cas_failure_emits_atomic_read() {
    let mut mb = ModuleBuilder::new("casfail");
    let x = mb.global_init("x", 1, vec![5]);
    mb.entry("main", |f| {
        let old = f.cas(x.at(0), 0, 1, MemOrder::AcqRel);
        f.output(old);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let (summary, events) = run(&m, VmConfig::round_robin());
    assert_eq!(summary.outputs, vec![(0, 5)]);
    assert!(events.iter().any(|e| matches!(
        e,
        Event::Read {
            atomic: Some(MemOrder::AcqRel),
            value: 5,
            ..
        }
    )));
    assert!(!events.iter().any(|e| matches!(e, Event::Update { .. })));
}

/// Flag handoff via ad-hoc spin; instrumented so the VM tracks the loop.
fn spin_handoff_module() -> Module {
    let mut mb = ModuleBuilder::new("spin");
    let flag = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag.at(0));
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(waiter, 0);
        f.store(data.at(0), 55);
        f.store(flag.at(0), 1);
        f.join(t);
        f.ret(None);
    });
    let mut m = mb.finish().unwrap();
    let analysis = SpinFinder::default().instrument(&mut m);
    assert_eq!(analysis.accepted(), 1);
    m
}

#[test]
fn spin_handoff_completes_and_reports_exit_reads() {
    let m = spin_handoff_module();
    for seed in 0..10 {
        let (summary, events) = run(&m, VmConfig::random(seed));
        assert_eq!(
            summary.outputs.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![55],
            "seed {seed}"
        );
        assert!(summary.spin_enters >= 1);
        assert_eq!(summary.spin_enters, summary.spin_exits);
        // The SpinExit of the waiter must carry the flag read of the final
        // iteration.
        let exit = events
            .iter()
            .find_map(|e| match e {
                Event::SpinExit { tid: 1, reads, .. } => Some(reads.clone()),
                _ => None,
            })
            .expect("waiter spin exit");
        assert_eq!(exit.len(), 1, "final iteration reads exactly the flag");
        let flag_addr = Module::GLOBAL_BASE;
        assert_eq!(exit[0].0, flag_addr);
    }
}

#[test]
fn spin_reads_are_marked_in_event_stream() {
    let m = spin_handoff_module();
    let (_, events) = run(&m, VmConfig::round_robin());
    let spin_reads = events
        .iter()
        .filter(|e| matches!(e, Event::Read { spin: Some(_), .. }))
        .count();
    assert!(spin_reads >= 1, "tagged loads are marked");
    // data loads are NOT spin-marked
    let data_addr = Module::GLOBAL_BASE + 1;
    assert!(events.iter().any(|e| matches!(
        e,
        Event::Read {
            addr,
            spin: None,
            ..
        } if *addr == data_addr
    )));
}

#[test]
fn deadlock_is_detected() {
    let mut mb = ModuleBuilder::new("deadlock");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    mb.entry("main", |f| {
        f.lock(mu.at(0));
        f.wait(cv.at(0), mu.at(0)); // nobody will ever signal
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let err = run_module(&m, VmConfig::round_robin(), &mut NullSink).unwrap_err();
    assert!(matches!(err, VmError::Deadlock { .. }));
}

#[test]
fn step_limit_stops_runaway_loops() {
    let mut mb = ModuleBuilder::new("runaway");
    mb.entry("main", |f| {
        let head = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.jump(head);
    });
    let m = mb.finish().unwrap();
    let cfg = VmConfig {
        max_steps: 1000,
        ..VmConfig::round_robin()
    };
    let err = run_module(&m, cfg, &mut NullSink).unwrap_err();
    assert!(matches!(err, VmError::StepLimit { steps: 1000 }));
}

#[test]
fn assert_failure_traps() {
    let mut mb = ModuleBuilder::new("trap");
    mb.entry("main", |f| {
        f.assert_(Operand::Imm(0), "boom");
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let err = run_module(&m, VmConfig::round_robin(), &mut NullSink).unwrap_err();
    match err {
        VmError::Trap { message, .. } => assert!(message.contains("boom")),
        e => panic!("expected trap, got {e:?}"),
    }
}

#[test]
fn division_by_zero_traps() {
    let mut mb = ModuleBuilder::new("div0");
    mb.entry("main", |f| {
        let z = f.const_(0);
        let v = f.bin(spinrace_tir::BinOp::Div, 1, z);
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    assert!(matches!(
        run_module(&m, VmConfig::round_robin(), &mut NullSink),
        Err(VmError::Trap { .. })
    ));
}

#[test]
fn recursive_lock_traps() {
    let mut mb = ModuleBuilder::new("relock");
    let mu = mb.global("mu", 1);
    mb.entry("main", |f| {
        f.lock(mu.at(0));
        f.lock(mu.at(0));
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    assert!(matches!(
        run_module(&m, VmConfig::round_robin(), &mut NullSink),
        Err(VmError::Trap { .. })
    ));
}

#[test]
fn unlock_without_ownership_traps() {
    let mut mb = ModuleBuilder::new("badunlock");
    let mu = mb.global("mu", 1);
    mb.entry("main", |f| {
        f.unlock(mu.at(0));
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    assert!(matches!(
        run_module(&m, VmConfig::round_robin(), &mut NullSink),
        Err(VmError::Trap { .. })
    ));
}

#[test]
fn exit_terminates_all_threads() {
    let mut mb = ModuleBuilder::new("exit");
    let spinner = {
        let g = mb.global("g", 1);
        mb.function("spinner", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(g.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        })
    };
    mb.entry("main", |f| {
        let _t = f.spawn(spinner, 0);
        f.output(1);
        f.exit();
    });
    let m = mb.finish().unwrap();
    let (summary, _) = run(&m, VmConfig::round_robin());
    assert_eq!(summary.outputs, vec![(0, 1)]);
}

#[test]
fn identical_seeds_produce_identical_event_streams() {
    let m = spin_handoff_module();
    let (_, e1) = run(&m, VmConfig::random(12345));
    let (_, e2) = run(&m, VmConfig::random(12345));
    assert_eq!(e1, e2);
    let (_, e3) = run(&m, VmConfig::random(54321));
    // Streams from different seeds usually differ (not a hard guarantee,
    // but these two do for this program).
    assert_ne!(e1, e3);
}

#[test]
fn round_robin_is_reproducible() {
    let m = locked_counter_module(5);
    let (_, e1) = run(&m, VmConfig::round_robin());
    let (_, e2) = run(&m, VmConfig::round_robin());
    assert_eq!(e1, e2);
}

#[test]
fn events_are_per_thread_program_ordered() {
    let m = locked_counter_module(3);
    let (_, events) = run(&m, VmConfig::random(3));
    // Within one thread, event pcs of consecutive same-block memory events
    // never decrease in instruction index unless the block changed (loop).
    // Weaker sanity: Spawn of child precedes any event of that child.
    for child in [1u32, 2u32] {
        let spawn_pos = events
            .iter()
            .position(|e| matches!(e, Event::Spawn { child: c, .. } if *c == child))
            .expect("spawn");
        let first_child_event = events.iter().position(|e| e.tid() == child);
        if let Some(p) = first_child_event {
            assert!(spawn_pos < p, "child {child} acts only after spawn");
        }
    }
}

#[test]
fn run_summary_counts_threads_and_memory() {
    let m = locked_counter_module(1);
    let (summary, _) = run(&m, VmConfig::round_robin());
    assert_eq!(summary.threads_created, 3);
    assert_eq!(summary.memory_words, 2); // mu + counter
    assert!(summary.steps > 0);
}
