//! VM edge cases: nested spin instances, spin exit via return, scaled
//! addressing, thread limits, and scheduler starvation-freedom.

use spinrace_spinfind::SpinFinder;
use spinrace_tir::{AddrExpr, Module, ModuleBuilder, Operand};
use spinrace_vm::{run_module, Event, NullSink, RecordingSink, VmConfig, VmError};

fn run_instrumented(m: &Module, cfg: VmConfig) -> (spinrace_vm::RunSummary, Vec<Event>) {
    let mut m = m.clone();
    let _ = SpinFinder::default().instrument(&mut m);
    let mut sink = RecordingSink::default();
    let s = run_module(&m, cfg, &mut sink).expect("run");
    (s, sink.events)
}

/// A spin loop nested inside a non-spin outer loop: instances are pushed
/// and popped per outer iteration, with balanced enter/exit counts.
#[test]
fn spin_instances_balance_inside_outer_loops() {
    let mut mb = ModuleBuilder::new("nested");
    let flags = mb.global("flags", 4);
    let waiter = mb.function("waiter", 1, |f| {
        // for i in 0..4 { spin on flags[i] }
        let check = f.new_block();
        let body = f.new_block();
        let spin = f.new_block();
        let after_spin = f.new_block();
        let done = f.new_block();
        let i = f.const_(0);
        f.jump(check);
        f.switch_to(check);
        let c = f.lt(i, 4);
        f.branch(c, body, done);
        f.switch_to(body);
        f.jump(spin);
        f.switch_to(spin);
        let v = f.load(flags.idx(i));
        f.branch(v, after_spin, spin);
        f.switch_to(after_spin);
        let i2 = f.add(i, 1);
        f.mov(i, i2);
        f.jump(check);
        f.switch_to(done);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(waiter, 0);
        for i in 0..4 {
            f.store(flags.at(i), 1);
        }
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let (summary, events) = run_instrumented(&m, VmConfig::round_robin());
    assert_eq!(summary.spin_enters, summary.spin_exits);
    assert!(summary.spin_enters >= 4, "one instance per outer iteration");
    // Each SpinExit's final read targets the flag of that iteration.
    let exits: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e, Event::SpinExit { .. }))
        .collect();
    assert!(exits.len() >= 4);
}

/// A function whose entry block is itself a spin header (no preamble
/// jump): the instance must be tracked from frame creation.
#[test]
fn entry_block_spin_header_is_tracked() {
    let mut mb = ModuleBuilder::new("entry-spin");
    let flag = mb.global("flag", 1);
    let waiter = mb.function("waiter", 1, |f| {
        // block 0 is the loop header: load; branch back to block 0.
        let done = f.new_block();
        let v = f.load(flag.at(0));
        f.branch(v, done, spinrace_tir::BlockId(0));
        f.switch_to(done);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(waiter, 0);
        f.store(flag.at(0), 1);
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let (summary, _) = run_instrumented(&m, VmConfig::round_robin());
    assert!(summary.spin_enters >= 1);
    assert_eq!(summary.spin_enters, summary.spin_exits);
}

/// Scaled and displaced addressing round-trips through memory.
#[test]
fn scaled_indexed_addressing() {
    let mut mb = ModuleBuilder::new("scaled");
    let grid = mb.global("grid", 16);
    mb.entry("main", |f| {
        let row = f.const_(2);
        // grid[row*4 + 1] = 99
        f.store(grid.idx_scaled(row, 4, 1), 99);
        let v = f.load(grid.at(9));
        f.output(v);
        // pointer-based with index: p[row*2] via BasedIndexed
        let p = f.addr_of(grid, 0);
        let two = f.const_(2);
        f.store(
            AddrExpr::BasedIndexed {
                base: p,
                index: row,
                scale: 2,
                disp: 0,
            },
            Operand::Reg(two),
        );
        let w = f.load(grid.at(4));
        f.output(w);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let mut sink = NullSink;
    let s = run_module(&m, VmConfig::round_robin(), &mut sink).unwrap();
    assert_eq!(
        s.outputs.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
        vec![99, 2]
    );
}

/// Exceeding the thread limit is a clean error, not a panic.
#[test]
fn thread_limit_is_enforced() {
    let mut mb = ModuleBuilder::new("forkbomb");
    let worker = mb.function("w", 1, |f| {
        f.ret(None);
    });
    mb.entry("main", |f| {
        for _ in 0..40 {
            let t = f.spawn(worker, 0);
            f.join(t);
        }
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let cfg = VmConfig {
        max_threads: 8,
        ..VmConfig::round_robin()
    };
    match run_module(&m, cfg, &mut NullSink) {
        Err(VmError::TooManyThreads { limit: 8 }) => {}
        other => panic!("expected TooManyThreads, got {other:?}"),
    }
}

/// Round-robin never starves the counterpart writer: a chain of eight
/// dependent spin handoffs completes well within the step budget.
#[test]
fn spin_chains_make_progress_under_round_robin() {
    let mut mb = ModuleBuilder::new("chain");
    let flags = mb.global("flags", 9);
    let relay = mb.function("relay", 1, |f| {
        let id = f.param(0);
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flags.idx(id));
        f.branch(v, done, head);
        f.switch_to(done);
        let next = f.add(id, 1);
        f.store(flags.idx(next), 1);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..8).map(|i| f.spawn(relay, i)).collect();
        f.store(flags.at(0), 1);
        for t in tids {
            f.join(t);
        }
        let v = f.load(flags.at(8));
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    for cfg in [VmConfig::round_robin(), VmConfig::random(9)] {
        let mut sink = NullSink;
        let s = run_module(&m, cfg, &mut sink).unwrap();
        assert_eq!(s.outputs, vec![(0, 1)]);
        assert!(s.steps < 100_000, "no pathological spinning: {}", s.steps);
    }
}

/// Stack hashes distinguish the same library code called from different
/// sites (the Helgrind-style context model).
#[test]
fn stack_hashes_distinguish_call_sites() {
    let mut mb = ModuleBuilder::new("stacks");
    let g = mb.global("g", 1);
    let helper = mb.function("helper", 0, |f| {
        let v = f.load(g.at(0));
        f.ret(Some(Operand::Reg(v)));
    });
    mb.entry("main", |f| {
        let a = f.call(helper, &[]);
        let b = f.call(helper, &[]);
        let s = f.add(a, b);
        f.output(s);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let mut sink = RecordingSink::default();
    run_module(&m, VmConfig::round_robin(), &mut sink).unwrap();
    let stacks: Vec<u64> = sink
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Read { stack, .. } => Some(*stack),
            _ => None,
        })
        .collect();
    assert_eq!(stacks.len(), 2);
    assert_ne!(stacks[0], stacks[1], "distinct call sites, distinct stacks");
}
