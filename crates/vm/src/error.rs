//! Run-time errors: traps, deadlocks, resource limits.

use crate::events::ThreadId;
use spinrace_tir::Pc;
use std::fmt;

/// Why a run ended abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// A thread performed an illegal operation (failed assert, division by
    /// zero, wild address, unlocking an unowned mutex, ...).
    Trap {
        tid: ThreadId,
        pc: Pc,
        message: String,
    },
    /// No thread is runnable but not all have finished.
    Deadlock {
        /// `(thread, human-readable reason)` for every blocked thread.
        blocked: Vec<(ThreadId, String)>,
    },
    /// The step quota was exhausted (livelock or runaway program).
    StepLimit { steps: u64 },
    /// More threads were spawned than the configured maximum.
    TooManyThreads { limit: usize },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Trap { tid, pc, message } => {
                write!(f, "thread {tid} trapped at {pc}: {message}")
            }
            VmError::Deadlock { blocked } => {
                write!(f, "deadlock; blocked threads: ")?;
                for (i, (tid, why)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "t{tid} ({why})")?;
                }
                Ok(())
            }
            VmError::StepLimit { steps } => write!(f, "step limit exhausted after {steps} steps"),
            VmError::TooManyThreads { limit } => write!(f, "thread limit {limit} exceeded"),
        }
    }
}

impl std::error::Error for VmError {}
