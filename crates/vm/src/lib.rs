//! # SpinRace VM — the runtime phase's execution substrate
//!
//! A deterministic, multithreaded interpreter for TIR. It plays the role
//! Valgrind plays for Helgrind+: it executes the (instrumented) program
//! while streaming every memory access, synchronization operation and
//! spin-loop lifecycle event to an [`EventSink`] — typically a race
//! detector from `spinrace-detector`.
//!
//! Key properties:
//!
//! * **Determinism** — given the same module, scheduler and seed, the VM
//!   produces bit-identical event streams (property-tested). Schedulers
//!   preempt at every instruction, so all interleavings of interest are
//!   reachable by varying seeds.
//! * **Two synchronization levels** — library ops ([`tir`] `MutexLock`
//!   etc.) are executed natively with blocking semantics (the *known
//!   library* mode of the paper), while lowered programs synchronize
//!   purely through memory and spin loops (the *unknown library* mode).
//! * **Spin-loop runtime tracking** — when the module carries a
//!   [`spinrace_tir::SpinTable`], the VM maintains per-thread stacks of
//!   active spin-loop instances, records the tagged condition loads of the
//!   current iteration, and emits [`Event::SpinExit`] with the final
//!   iteration's reads when the loop is left — exactly the information the
//!   detector needs to place the happens-before edge from the counterpart
//!   write to the loop exit.
//!
//! [`tir`]: spinrace_tir

pub mod error;
pub mod events;
pub mod exec;
pub mod machine;
pub mod memory;
pub mod sched;
pub mod spin_rt;
pub mod sync;
pub mod trace;

pub use error::VmError;
pub use events::{Event, EventSink, FanoutSink, NullSink, RecordingSink, Tee, ThreadId};
pub use exec::{run_module, RunSummary, Vm, VmConfig};
pub use sched::{RoundRobin, Scheduler, SchedulerKind, SeededRandom};
pub use trace::{record_run, Trace, TraceError, TraceHeader, TraceRecorder, TRACE_FORMAT_VERSION};
