//! The interpreter: executes a module one instruction at a time under a
//! deterministic scheduler, streaming events to an [`EventSink`].

use crate::error::VmError;
use crate::events::{Event, EventSink, ThreadId};
use crate::machine::{Frame, Thread, ThreadState};
use crate::memory::Memory;
use crate::sched::SchedulerKind;
use crate::spin_rt::{SpinAction, SpinRuntime};
use crate::sync::{BarrierState, SyncState};
use serde::{Deserialize, Serialize};
use spinrace_tir::{
    AddrExpr, Atomicity, BinOp, BlockId, Instr, MemOrder, Module, Operand, Pc, Reg, RmwOp,
    Terminator, UnOp,
};

/// Run configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmConfig {
    /// Scheduling policy.
    pub sched: SchedulerKind,
    /// Abort with [`VmError::StepLimit`] after this many instructions.
    pub max_steps: u64,
    /// Maximum live + finished threads.
    pub max_threads: usize,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            sched: SchedulerKind::RoundRobin,
            max_steps: 5_000_000,
            max_threads: 128,
        }
    }
}

impl VmConfig {
    /// Round-robin configuration (the fully deterministic default).
    pub fn round_robin() -> Self {
        Self::default()
    }
    /// Seeded-random configuration.
    pub fn random(seed: u64) -> Self {
        VmConfig {
            sched: SchedulerKind::Random(seed),
            ..Default::default()
        }
    }
}

/// Statistics of a completed run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Executed instructions (terminators included).
    pub steps: u64,
    /// `Output` values in emission order.
    pub outputs: Vec<(ThreadId, i64)>,
    /// Total threads ever created (main included).
    pub threads_created: usize,
    /// Spin-loop instances entered.
    pub spin_enters: u64,
    /// Spin-loop instances exited.
    pub spin_exits: u64,
    /// Final memory footprint in words (globals + heap).
    pub memory_words: usize,
}

/// The virtual machine for one run.
pub struct Vm<'m> {
    m: &'m Module,
    cfg: VmConfig,
    mem: Memory,
    sync: SyncState,
    threads: Vec<Thread>,
    global_base: Vec<u64>,
    spin_rt: SpinRuntime,
    outputs: Vec<(ThreadId, i64)>,
    steps: u64,
    spin_enters: u64,
    spin_exits: u64,
    exited: bool,
}

/// Convenience: run `m` to completion with `cfg`, streaming into `sink`.
pub fn run_module(
    m: &Module,
    cfg: VmConfig,
    sink: &mut dyn EventSink,
) -> Result<RunSummary, VmError> {
    Vm::new(m, cfg).run(sink)
}

impl<'m> Vm<'m> {
    /// Create a VM with the main thread ready at the module entry.
    pub fn new(m: &'m Module, cfg: VmConfig) -> Vm<'m> {
        let global_base = (0..m.globals.len())
            .map(|g| m.global_base(spinrace_tir::GlobalId(g as u32)))
            .collect();
        let spin_rt = SpinRuntime::new(m);
        let entry_fn = m.function(m.entry);
        let mut root = Frame::new(m.entry, entry_fn.num_regs, None);
        // The entry block could itself be a spin header.
        let _ = spin_rt.on_block_entry(&mut root, BlockId(0));
        let threads = vec![Thread::new(0, root)];
        Vm {
            m,
            cfg,
            mem: Memory::new(m),
            sync: SyncState::default(),
            threads,
            global_base,
            spin_rt,
            outputs: Vec::new(),
            steps: 0,
            spin_enters: 0,
            spin_exits: 0,
            exited: false,
        }
    }

    /// Execute until all threads finish (or an error occurs).
    pub fn run(&mut self, sink: &mut dyn EventSink) -> Result<RunSummary, VmError> {
        let mut sched = self.cfg.sched.build();
        let mut runnable: Vec<ThreadId> = Vec::new();
        loop {
            if self.exited {
                break;
            }
            runnable.clear();
            runnable.extend(
                self.threads
                    .iter()
                    .filter(|t| t.state == ThreadState::Runnable)
                    .map(|t| t.id),
            );
            if runnable.is_empty() {
                if self
                    .threads
                    .iter()
                    .all(|t| t.state == ThreadState::Finished)
                {
                    break;
                }
                return Err(VmError::Deadlock {
                    blocked: self
                        .threads
                        .iter()
                        .filter(|t| t.state != ThreadState::Finished)
                        .map(|t| (t.id, t.state.describe()))
                        .collect(),
                });
            }
            if self.steps >= self.cfg.max_steps {
                return Err(VmError::StepLimit { steps: self.steps });
            }
            let pick = sched.pick(&runnable);
            self.step(runnable[pick] as usize, sink)?;
            self.steps += 1;
        }
        Ok(RunSummary {
            steps: self.steps,
            outputs: std::mem::take(&mut self.outputs),
            threads_created: self.threads.len(),
            spin_enters: self.spin_enters,
            spin_exits: self.spin_exits,
            memory_words: self.mem.words(),
        })
    }

    // ---- small accessors ----

    fn val(&self, t: usize, o: Operand) -> i64 {
        match o {
            Operand::Imm(v) => v,
            Operand::Reg(r) => self.threads[t].frame().regs[r.0 as usize],
        }
    }

    fn set_reg(&mut self, t: usize, r: Reg, v: i64) {
        self.threads[t].frame_mut().regs[r.0 as usize] = v;
    }

    fn addr(&self, t: usize, a: &AddrExpr) -> u64 {
        let reg = |r: Reg| self.threads[t].frame().regs[r.0 as usize];
        let wrap = |base: u64, off: i64| base.wrapping_add(off as u64);
        match a {
            AddrExpr::Global { global, disp } => wrap(self.global_base[global.0 as usize], *disp),
            AddrExpr::GlobalIndexed {
                global,
                index,
                scale,
                disp,
            } => wrap(
                self.global_base[global.0 as usize],
                reg(*index).wrapping_mul(*scale).wrapping_add(*disp),
            ),
            AddrExpr::Based { base, disp } => wrap(reg(*base) as u64, *disp),
            AddrExpr::BasedIndexed {
                base,
                index,
                scale,
                disp,
            } => wrap(
                reg(*base) as u64,
                reg(*index).wrapping_mul(*scale).wrapping_add(*disp),
            ),
        }
    }

    fn pc_of(&self, t: usize) -> Pc {
        self.threads[t].frame().pc()
    }

    /// Helgrind-style stack context: a hash of the call chain. Caller
    /// frames contribute their call-site position (their `ip` points just
    /// past the call), the leaf contributes its function id, so the same
    /// library code reached from different call sites yields different
    /// contexts.
    ///
    /// O(1): every frame carries the fold over its callers (`Frame::ctx`,
    /// extended at `Call`/`Spawn` time — caller positions are frozen while
    /// a callee runs), so only the leaf's contribution remains. Memory
    /// events are the VM's hottest path; the old per-event walk over the
    /// frame stack was its dominant cost on call-heavy programs.
    fn stack_of(&self, t: usize) -> u64 {
        let f = self.threads[t].frame();
        (f.ctx ^ f.func.0 as u64).wrapping_mul(crate::machine::STACK_HASH_PRIME)
    }

    /// The call-chain prefix for a frame called from the current top frame
    /// of `t` (whose `ip` must already point past the call instruction).
    fn callee_ctx(&self, t: usize) -> u64 {
        let caller = self.threads[t].frame();
        let v = ((caller.func.0 as u64) << 32) | ((caller.block.0 as u64) << 16) | caller.ip as u64;
        (caller.ctx ^ v).wrapping_mul(crate::machine::STACK_HASH_PRIME)
    }

    fn advance(&mut self, t: usize) {
        self.threads[t].frame_mut().ip += 1;
    }

    fn trap(&self, t: usize, message: impl Into<String>) -> VmError {
        VmError::Trap {
            tid: self.threads[t].id,
            pc: self.pc_of(t),
            message: message.into(),
        }
    }

    fn emit_spin_actions(
        &mut self,
        tid: ThreadId,
        actions: Vec<SpinAction>,
        sink: &mut dyn EventSink,
    ) {
        for a in actions {
            match a {
                SpinAction::Enter(id) => {
                    self.spin_enters += 1;
                    sink.on_event(&Event::SpinEnter { tid, spin: id });
                }
                SpinAction::Exit(id, reads) => {
                    self.spin_exits += 1;
                    sink.on_event(&Event::SpinExit {
                        tid,
                        spin: id,
                        reads,
                    });
                }
            }
        }
    }

    fn goto(&mut self, t: usize, block: BlockId, sink: &mut dyn EventSink) {
        let tid = self.threads[t].id;
        let actions = {
            let this = &mut *self;
            let frame = this.threads[t].frames.last_mut().expect("frame");
            frame.block = block;
            frame.ip = 0;
            this.spin_rt.on_block_entry(frame, block)
        };
        self.emit_spin_actions(tid, actions, sink);
    }

    // ---- the interpreter ----

    fn step(&mut self, t: usize, sink: &mut dyn EventSink) -> Result<(), VmError> {
        let m = self.m; // &'m — independent of &mut self below
        let (func_id, block_id, ip) = {
            let f = self.threads[t].frame();
            (f.func, f.block, f.ip)
        };
        let block = m.function(func_id).block(block_id);
        if (ip as usize) < block.instrs.len() {
            let instr: &'m Instr = &block.instrs[ip as usize];
            self.exec_instr(t, instr, sink)
        } else {
            let term: &'m Terminator = &block.term;
            self.exec_term(t, term, sink)
        }
    }

    fn exec_term(
        &mut self,
        t: usize,
        term: &Terminator,
        sink: &mut dyn EventSink,
    ) -> Result<(), VmError> {
        match term {
            Terminator::Jump(b) => {
                self.goto(t, *b, sink);
                Ok(())
            }
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => {
                let v = self.val(t, *cond);
                self.goto(t, if v != 0 { *if_true } else { *if_false }, sink);
                Ok(())
            }
            Terminator::Ret(v) => {
                let value = v.map(|o| self.val(t, o));
                self.do_ret(t, value, sink);
                Ok(())
            }
            Terminator::Exit => {
                self.exited = true;
                Ok(())
            }
        }
    }

    fn do_ret(&mut self, t: usize, value: Option<i64>, sink: &mut dyn EventSink) {
        let tid = self.threads[t].id;
        let actions = {
            let this = &mut *self;
            let frame = this.threads[t].frames.last_mut().expect("frame");
            this.spin_rt.drain_frame(frame)
        };
        self.emit_spin_actions(tid, actions, sink);
        let frame = self.threads[t].frames.pop().expect("frame");
        if self.threads[t].frames.is_empty() {
            self.threads[t].state = ThreadState::Finished;
            sink.on_event(&Event::ThreadEnd { tid });
            self.wake_joiners(tid, sink);
        } else if let (Some(dst), Some(v)) = (frame.ret_to, value) {
            self.set_reg(t, dst, v);
        }
    }

    fn wake_joiners(&mut self, ended: ThreadId, sink: &mut dyn EventSink) {
        for w in 0..self.threads.len() {
            if self.threads[w].state == (ThreadState::BlockedJoin { target: ended }) {
                let pc = self.pc_of(w);
                let parent = self.threads[w].id;
                self.threads[w].state = ThreadState::Runnable;
                self.advance(w);
                sink.on_event(&Event::Join {
                    parent,
                    child: ended,
                    pc,
                });
            }
        }
    }

    /// Release `mutex` owned by `t` (unlock or the release half of a
    /// condition wait), handing off to the first waiter if any.
    fn release_mutex(
        &mut self,
        t: usize,
        mutex: u64,
        sink: &mut dyn EventSink,
    ) -> Result<(), VmError> {
        let tid = self.threads[t].id;
        let pc = self.pc_of(t);
        let owner = self.sync.mutex(mutex).owner;
        if owner != Some(tid) {
            return Err(VmError::Trap {
                tid,
                pc,
                message: format!("unlock of mutex {mutex:#x} not owned"),
            });
        }
        sink.on_event(&Event::MutexUnlock { tid, mutex, pc });
        let next = {
            let mu = self.sync.mutex(mutex);
            match mu.waiters.pop_front() {
                Some(w) => {
                    mu.owner = Some(w);
                    Some(w)
                }
                None => {
                    mu.owner = None;
                    None
                }
            }
        };
        if let Some(w) = next {
            self.grant_mutex(w as usize, mutex, sink);
        }
        Ok(())
    }

    /// `w` (blocked on `mutex`) now owns it: wake, emit, advance.
    fn grant_mutex(&mut self, w: usize, mutex: u64, sink: &mut dyn EventSink) {
        let wtid = self.threads[w].id;
        let pc = self.pc_of(w);
        let for_cond = match self.threads[w].state {
            ThreadState::BlockedMutex { for_cond, .. } => for_cond,
            ref s => unreachable!("grant_mutex on thread in state {s:?}"),
        };
        self.threads[w].state = ThreadState::Runnable;
        self.advance(w);
        sink.on_event(&Event::MutexLock {
            tid: wtid,
            mutex,
            pc,
        });
        if let Some(cv) = for_cond {
            sink.on_event(&Event::CondWaitReturn {
                tid: wtid,
                cv,
                mutex,
                pc,
            });
        }
    }

    /// A condvar waiter was signalled: try to re-acquire its mutex.
    fn wake_cond_waiter(&mut self, w: usize, sink: &mut dyn EventSink) {
        let (cv, mutex) = match self.threads[w].state {
            ThreadState::BlockedCond { cv, mutex } => (cv, mutex),
            ref s => unreachable!("wake_cond_waiter on state {s:?}"),
        };
        let tid = self.threads[w].id;
        let acquired = {
            let mu = self.sync.mutex(mutex);
            if mu.owner.is_none() {
                mu.owner = Some(tid);
                true
            } else {
                mu.waiters.push_back(tid);
                false
            }
        };
        if acquired {
            self.threads[w].state = ThreadState::BlockedMutex {
                mutex,
                for_cond: Some(cv),
            };
            self.grant_mutex(w, mutex, sink);
        } else {
            self.threads[w].state = ThreadState::BlockedMutex {
                mutex,
                for_cond: Some(cv),
            };
        }
    }

    fn exec_instr(
        &mut self,
        t: usize,
        instr: &Instr,
        sink: &mut dyn EventSink,
    ) -> Result<(), VmError> {
        let tid = self.threads[t].id;
        let pc = self.pc_of(t);
        match instr {
            Instr::Const { dst, value } => {
                self.set_reg(t, *dst, *value);
                self.advance(t);
            }
            Instr::Mov { dst, src } => {
                let v = self.threads[t].frame().regs[src.0 as usize];
                self.set_reg(t, *dst, v);
                self.advance(t);
            }
            Instr::Bin { op, dst, a, b } => {
                let x = self.val(t, *a);
                let y = self.val(t, *b);
                let v = eval_bin(*op, x, y).map_err(|e| self.trap(t, e))?;
                self.set_reg(t, *dst, v);
                self.advance(t);
            }
            Instr::Un { op, dst, a } => {
                let x = self.val(t, *a);
                let v = match op {
                    UnOp::Not => (x == 0) as i64,
                    UnOp::Neg => x.wrapping_neg(),
                    UnOp::BitNot => !x,
                };
                self.set_reg(t, *dst, v);
                self.advance(t);
            }
            Instr::AddrOf { dst, global, disp } => {
                let a = self.global_base[global.0 as usize].wrapping_add(*disp as u64);
                self.set_reg(t, *dst, a as i64);
                self.advance(t);
            }
            Instr::Load { dst, addr, atomic } => {
                let a = self.addr(t, addr);
                let v = self.mem.read(a).map_err(|e| self.trap(t, e))?;
                let spin = if self.spin_rt.is_tagged(pc) {
                    match self.threads[t].innermost_spin() {
                        Some((fi, si)) => {
                            let spin_id = {
                                let th = &mut self.threads[t];
                                th.frames[fi].spins[si].reads.push((a, pc));
                                th.frames[fi].spins[si].loop_idx
                            };
                            Some(self.spin_rt.id(spin_id))
                        }
                        None => None,
                    }
                } else {
                    None
                };
                sink.on_event(&Event::Read {
                    tid,
                    addr: a,
                    value: v,
                    pc,
                    stack: self.stack_of(t),
                    atomic: order_of(*atomic),
                    spin,
                });
                self.set_reg(t, *dst, v);
                self.advance(t);
            }
            Instr::Store { src, addr, atomic } => {
                let a = self.addr(t, addr);
                let v = self.val(t, *src);
                self.mem.write(a, v).map_err(|e| self.trap(t, e))?;
                sink.on_event(&Event::Write {
                    tid,
                    addr: a,
                    value: v,
                    pc,
                    stack: self.stack_of(t),
                    atomic: order_of(*atomic),
                });
                self.advance(t);
            }
            Instr::Cas {
                dst,
                addr,
                expected,
                new,
                order,
            } => {
                let a = self.addr(t, addr);
                let old = self.mem.read(a).map_err(|e| self.trap(t, e))?;
                let exp = self.val(t, *expected);
                let newv = self.val(t, *new);
                if old == exp {
                    self.mem.write(a, newv).map_err(|e| self.trap(t, e))?;
                    sink.on_event(&Event::Update {
                        tid,
                        addr: a,
                        old,
                        new: newv,
                        pc,
                        stack: self.stack_of(t),
                        order: *order,
                    });
                } else {
                    sink.on_event(&Event::Read {
                        tid,
                        addr: a,
                        value: old,
                        pc,
                        stack: self.stack_of(t),
                        atomic: Some(*order),
                        spin: None,
                    });
                }
                self.set_reg(t, *dst, old);
                self.advance(t);
            }
            Instr::Rmw {
                op,
                dst,
                addr,
                src,
                order,
            } => {
                let a = self.addr(t, addr);
                let old = self.mem.read(a).map_err(|e| self.trap(t, e))?;
                let x = self.val(t, *src);
                let newv = match op {
                    RmwOp::Add => old.wrapping_add(x),
                    RmwOp::Sub => old.wrapping_sub(x),
                    RmwOp::And => old & x,
                    RmwOp::Or => old | x,
                    RmwOp::Xor => old ^ x,
                    RmwOp::Xchg => x,
                    RmwOp::Min => old.min(x),
                    RmwOp::Max => old.max(x),
                };
                self.mem.write(a, newv).map_err(|e| self.trap(t, e))?;
                sink.on_event(&Event::Update {
                    tid,
                    addr: a,
                    old,
                    new: newv,
                    pc,
                    stack: self.stack_of(t),
                    order: *order,
                });
                self.set_reg(t, *dst, old);
                self.advance(t);
            }
            Instr::Fence { order } => {
                sink.on_event(&Event::Fence {
                    tid,
                    order: *order,
                    pc,
                });
                self.advance(t);
            }
            Instr::Alloc { dst, words } => {
                let w = self.val(t, *words);
                if w < 0 {
                    return Err(self.trap(t, "negative allocation size"));
                }
                let base = self.mem.alloc(w as u64);
                self.set_reg(t, *dst, base as i64);
                self.advance(t);
            }

            // ---- library synchronization ----
            Instr::MutexLock { addr } => {
                let a = self.addr(t, addr);
                let owner = self.sync.mutex(a).owner;
                if owner == Some(tid) {
                    return Err(VmError::Trap {
                        tid,
                        pc,
                        message: format!("recursive lock of mutex {a:#x}"),
                    });
                }
                let acquired = {
                    let mu = self.sync.mutex(a);
                    if mu.owner.is_none() {
                        mu.owner = Some(tid);
                        true
                    } else {
                        mu.waiters.push_back(tid);
                        false
                    }
                };
                if acquired {
                    sink.on_event(&Event::MutexLock { tid, mutex: a, pc });
                    self.advance(t);
                } else {
                    self.threads[t].state = ThreadState::BlockedMutex {
                        mutex: a,
                        for_cond: None,
                    };
                }
            }
            Instr::MutexUnlock { addr } => {
                let a = self.addr(t, addr);
                self.release_mutex(t, a, sink)?;
                self.advance(t);
            }
            Instr::CondSignal { cv } => {
                let a = self.addr(t, cv);
                sink.on_event(&Event::CondSignal { tid, cv: a, pc });
                self.advance(t);
                if let Some(w) = self.sync.cond(a).waiters.pop_front() {
                    self.wake_cond_waiter(w as usize, sink);
                }
            }
            Instr::CondBroadcast { cv } => {
                let a = self.addr(t, cv);
                sink.on_event(&Event::CondBroadcast { tid, cv: a, pc });
                self.advance(t);
                let waiters: Vec<ThreadId> = self.sync.cond(a).waiters.drain(..).collect();
                for w in waiters {
                    self.wake_cond_waiter(w as usize, sink);
                }
            }
            Instr::CondWait { cv, mutex } => {
                let cva = self.addr(t, cv);
                let mua = self.addr(t, mutex);
                self.release_mutex(t, mua, sink)?;
                self.sync.cond(cva).waiters.push_back(tid);
                self.threads[t].state = ThreadState::BlockedCond {
                    cv: cva,
                    mutex: mua,
                };
                // ip not advanced: completion happens via grant_mutex.
            }
            Instr::BarrierInit { addr, count } => {
                let a = self.addr(t, addr);
                let n = self.val(t, *count);
                if n <= 0 {
                    return Err(self.trap(t, "barrier initialized with non-positive count"));
                }
                if let Some(b) = self.sync.barriers.get(&a) {
                    if !b.waiters.is_empty() {
                        return Err(self.trap(t, "barrier re-initialized while in use"));
                    }
                }
                self.sync.barriers.insert(
                    a,
                    BarrierState {
                        parties: n as u32,
                        arrived: 0,
                        gen: 0,
                        waiters: Vec::new(),
                    },
                );
                self.advance(t);
            }
            Instr::BarrierWait { addr } => {
                let a = self.addr(t, addr);
                let Some(bar) = self.sync.barrier(a) else {
                    return Err(VmError::Trap {
                        tid,
                        pc,
                        message: format!("wait on uninitialized barrier {a:#x}"),
                    });
                };
                let gen = bar.gen;
                bar.arrived += 1;
                sink.on_event(&Event::BarrierEnter {
                    tid,
                    barrier: a,
                    gen,
                    pc,
                });
                let trip = bar.arrived == bar.parties;
                if trip {
                    bar.gen += 1;
                    bar.arrived = 0;
                    let waiters = std::mem::take(&mut bar.waiters);
                    self.advance(t);
                    sink.on_event(&Event::BarrierLeave {
                        tid,
                        barrier: a,
                        gen,
                        pc,
                    });
                    for w in waiters {
                        let w = w as usize;
                        let wpc = self.pc_of(w);
                        let wtid = self.threads[w].id;
                        self.threads[w].state = ThreadState::Runnable;
                        self.advance(w);
                        sink.on_event(&Event::BarrierLeave {
                            tid: wtid,
                            barrier: a,
                            gen,
                            pc: wpc,
                        });
                    }
                } else {
                    bar.waiters.push(tid);
                    self.threads[t].state = ThreadState::BlockedBarrier { barrier: a, gen };
                }
            }
            Instr::SemInit { addr, value } => {
                let a = self.addr(t, addr);
                let v = self.val(t, *value);
                if let Some(s) = self.sync.sems.get(&a) {
                    if !s.waiters.is_empty() {
                        return Err(self.trap(t, "semaphore re-initialized while in use"));
                    }
                }
                self.sync.sems.insert(
                    a,
                    crate::sync::SemState {
                        count: v,
                        waiters: Default::default(),
                    },
                );
                self.advance(t);
            }
            Instr::SemWait { addr } => {
                let a = self.addr(t, addr);
                let Some(sem) = self.sync.sem(a) else {
                    return Err(VmError::Trap {
                        tid,
                        pc,
                        message: format!("wait on uninitialized semaphore {a:#x}"),
                    });
                };
                if sem.count > 0 {
                    sem.count -= 1;
                    sink.on_event(&Event::SemAcquired { tid, sem: a, pc });
                    self.advance(t);
                } else {
                    sem.waiters.push_back(tid);
                    self.threads[t].state = ThreadState::BlockedSem { sem: a };
                }
            }
            Instr::SemPost { addr } => {
                let a = self.addr(t, addr);
                let Some(sem) = self.sync.sem(a) else {
                    return Err(VmError::Trap {
                        tid,
                        pc,
                        message: format!("post to uninitialized semaphore {a:#x}"),
                    });
                };
                sem.count += 1;
                sink.on_event(&Event::SemPost { tid, sem: a, pc });
                self.advance(t);
                let woken = {
                    let sem = self.sync.sem(a).expect("just used");
                    if sem.count > 0 {
                        if let Some(w) = sem.waiters.pop_front() {
                            sem.count -= 1;
                            Some(w)
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                };
                if let Some(w) = woken {
                    let w = w as usize;
                    let wpc = self.pc_of(w);
                    let wtid = self.threads[w].id;
                    self.threads[w].state = ThreadState::Runnable;
                    self.advance(w);
                    sink.on_event(&Event::SemAcquired {
                        tid: wtid,
                        sem: a,
                        pc: wpc,
                    });
                }
            }

            // ---- threads & calls ----
            Instr::Spawn { dst, func, arg } => {
                if self.threads.len() >= self.cfg.max_threads {
                    return Err(VmError::TooManyThreads {
                        limit: self.cfg.max_threads,
                    });
                }
                let child = self.threads.len() as ThreadId;
                let argv = self.val(t, *arg);
                let callee = self.m.function(*func);
                let mut root = Frame::new(*func, callee.num_regs, None);
                if callee.params >= 1 {
                    root.regs[0] = argv;
                }
                let actions = self.spin_rt.on_block_entry(&mut root, BlockId(0));
                self.threads.push(Thread::new(child, root));
                sink.on_event(&Event::Spawn {
                    parent: tid,
                    child,
                    pc,
                });
                self.emit_spin_actions(child, actions, sink);
                self.set_reg(t, *dst, child as i64);
                self.advance(t);
            }
            Instr::Join { tid: target } => {
                let target = self.val(t, *target);
                if target < 0 || target as usize >= self.threads.len() {
                    return Err(self.trap(t, format!("join of unknown thread {target}")));
                }
                let target = target as ThreadId;
                if target == tid {
                    return Err(self.trap(t, "thread joining itself"));
                }
                if self.threads[target as usize].state == ThreadState::Finished {
                    sink.on_event(&Event::Join {
                        parent: tid,
                        child: target,
                        pc,
                    });
                    self.advance(t);
                } else {
                    self.threads[t].state = ThreadState::BlockedJoin { target };
                }
            }
            Instr::Call { dst, func, args } => {
                let argv: Vec<i64> = args.iter().map(|a| self.val(t, *a)).collect();
                let callee = self.m.function(*func);
                // Caller resumes after the call once the callee returns.
                self.advance(t);
                let mut frame = Frame::new(*func, callee.num_regs, *dst);
                frame.ctx = self.callee_ctx(t);
                for (i, v) in argv.into_iter().enumerate() {
                    frame.regs[i] = v;
                }
                let actions = self.spin_rt.on_block_entry(&mut frame, BlockId(0));
                self.threads[t].frames.push(frame);
                self.emit_spin_actions(tid, actions, sink);
            }

            // ---- misc ----
            Instr::Yield | Instr::Nop => {
                self.advance(t);
            }
            Instr::Output { src } => {
                let v = self.val(t, *src);
                self.outputs.push((tid, v));
                sink.on_event(&Event::Output { tid, value: v });
                self.advance(t);
            }
            Instr::Assert { cond, msg } => {
                let v = self.val(t, *cond);
                if v == 0 {
                    let text = self.m.string(*msg).to_string();
                    return Err(self.trap(t, format!("assertion failed: {text}")));
                }
                self.advance(t);
            }
        }
        Ok(())
    }
}

fn order_of(a: Atomicity) -> Option<MemOrder> {
    match a {
        Atomicity::Plain => None,
        Atomicity::Atomic(o) => Some(o),
    }
}

fn eval_bin(op: BinOp, x: i64, y: i64) -> Result<i64, String> {
    Ok(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err("division by zero".into());
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return Err("remainder by zero".into());
            }
            x.wrapping_rem(y)
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32 & 63),
        BinOp::Shr => x.wrapping_shr(y as u32 & 63),
        BinOp::Eq => (x == y) as i64,
        BinOp::Ne => (x != y) as i64,
        BinOp::Lt => (x < y) as i64,
        BinOp::Le => (x <= y) as i64,
        BinOp::Gt => (x > y) as i64,
        BinOp::Ge => (x >= y) as i64,
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
    })
}
