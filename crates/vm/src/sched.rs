//! Thread schedulers. The VM preempts at every instruction; the scheduler
//! chooses which runnable thread executes next. All schedulers are
//! deterministic given their configuration, which makes whole runs (and
//! their event streams) reproducible.

use crate::events::ThreadId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Chooses the next thread to run.
pub trait Scheduler {
    /// Pick an index into `runnable` (non-empty, ascending thread ids).
    fn pick(&mut self, runnable: &[ThreadId]) -> usize;
}

/// Fair cyclic scheduler: runs each runnable thread one instruction in
/// turn. Guarantees progress for spin loops (the counterpart writer always
/// gets its turn).
#[derive(Default)]
pub struct RoundRobin {
    last: Option<ThreadId>,
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, runnable: &[ThreadId]) -> usize {
        let idx = match self.last {
            None => 0,
            Some(last) => {
                // First runnable thread with id > last, else wrap to 0.
                runnable.iter().position(|&t| t > last).unwrap_or(0)
            }
        };
        self.last = Some(runnable[idx]);
        idx
    }
}

/// Uniform random scheduler with a fixed seed. Different seeds explore
/// different interleavings; the same seed reproduces the same run.
pub struct SeededRandom {
    rng: StdRng,
}

impl SeededRandom {
    /// Scheduler seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for SeededRandom {
    fn pick(&mut self, runnable: &[ThreadId]) -> usize {
        self.rng.gen_range(0..runnable.len())
    }
}

/// Declarative scheduler selection (serializable run configuration).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`SeededRandom`] with the given seed.
    Random(u64),
}

impl SchedulerKind {
    /// Instantiate the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::RoundRobin => Box::<RoundRobin>::default(),
            SchedulerKind::Random(seed) => Box::new(SeededRandom::new(seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::default();
        let threads = [0, 1, 2];
        let picks: Vec<ThreadId> = (0..6).map(|_| threads[rr.pick(&threads)]).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_blocked() {
        let mut rr = RoundRobin::default();
        assert_eq!(rr.pick(&[0, 1, 2]), 0); // runs 0
                                            // thread 1 blocked now
        let r = [0, 2];
        assert_eq!(r[rr.pick(&r)], 2); // next after 0 is 2
        assert_eq!(r[rr.pick(&r)], 0); // wraps
    }

    #[test]
    fn seeded_random_is_deterministic() {
        let threads = [0, 1, 2, 3];
        let run = |seed| {
            let mut s = SeededRandom::new(seed);
            (0..32).map(|_| s.pick(&threads)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
