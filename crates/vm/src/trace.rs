//! Record-once / replay-everywhere: the serializable [`Trace`] artifact.
//!
//! A trace is the VM's full event stream for one deterministic run of one
//! prepared module, together with a versioned header (module fingerprint,
//! VM configuration, producer label) and the run's [`RunSummary`]. Given
//! the same prepared module and VM configuration the VM is bit-identical,
//! so a trace replayed into a detector is equivalent to attaching that
//! detector live — which is what lets one execution fan out to many
//! detector configurations (window sweeps, ablations, fast-vs-reference
//! differentials) without re-interpreting the program.
//!
//! * [`TraceRecorder`] is an [`EventSink`] that buffers the stream and
//!   seals it into a [`Trace`] with [`TraceRecorder::finish`]. Tee it with
//!   a detector to record and detect in one run.
//! * [`record_run`] is the one-call convenience: execute and record.
//! * [`Trace::to_json`] / [`Trace::from_json`] are the stable on-disk
//!   encoding (the vendored `serde_json`); parsing validates the format
//!   version and the header/stream event-count agreement.

use crate::error::VmError;
use crate::events::{Event, EventSink};
use crate::exec::{run_module, RunSummary, VmConfig};
use crate::sched::SchedulerKind;
use serde::{Deserialize, Serialize};
use spinrace_tir::Module;
use std::fmt;

/// Current trace encoding version. Bump on any change to [`TraceHeader`],
/// [`Event`], or their serde encodings.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Versioned metadata describing how a trace was produced.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Encoding version ([`TRACE_FORMAT_VERSION`] at record time).
    pub version: u32,
    /// Name of the *prepared* module that was executed.
    pub module_name: String,
    /// [`Module::fingerprint`] of the prepared module. Replaying under a
    /// detector only makes sense against the same prepared program; the
    /// fingerprint is also the sharing key for trace caches (tools whose
    /// preparation produced the same module share one trace).
    pub module_fingerprint: u64,
    /// Producer label, e.g. a tool label like `Helgrind+ lib+spin(7)`.
    /// Free-form; empty when recorded straight from the VM.
    pub tool_label: String,
    /// The VM configuration of the run (scheduler + seed included).
    pub vm: VmConfig,
    /// Number of events in the stream (validated when parsing).
    pub events: u64,
}

impl TraceHeader {
    /// The scheduler seed, for seeded-random runs.
    pub fn seed(&self) -> Option<u64> {
        match self.vm.sched {
            SchedulerKind::Random(seed) => Some(seed),
            SchedulerKind::RoundRobin => None,
        }
    }
}

/// A recorded execution: header, run statistics, and the event stream.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Provenance and validation metadata.
    pub header: TraceHeader,
    /// Statistics of the recorded run.
    pub summary: RunSummary,
    /// The full event stream, in execution order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Feed the stream to `sink` exactly as the live run did: every event
    /// by reference, in execution order.
    pub fn replay(&self, sink: &mut dyn EventSink) {
        for ev in &self.events {
            sink.on_event(ev);
        }
    }

    /// Does this trace belong to (a module identical to) `m`?
    pub fn matches_module(&self, m: &Module) -> bool {
        self.header.module_fingerprint == m.fingerprint()
    }

    /// Render as compact JSON (the stable interchange encoding).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization is infallible")
    }

    /// Parse a trace from JSON, validating the format version and the
    /// header's event count against the stream.
    pub fn from_json(text: &str) -> Result<Trace, TraceError> {
        let value: serde_json::Value =
            serde_json::from_str(text).map_err(|e| TraceError::Json(e.0))?;
        // Check the version before decoding the typed document: a trace
        // from a newer format would otherwise fail event deserialization
        // first and surface as a confusing parse error instead of a
        // version mismatch.
        if let Some(found) = value["header"]["version"].as_u64() {
            if found != TRACE_FORMAT_VERSION as u64 {
                return Err(TraceError::Version {
                    found: u32::try_from(found).unwrap_or(u32::MAX),
                    supported: TRACE_FORMAT_VERSION,
                });
            }
        }
        let trace: Trace = serde_json::from_value(&value).map_err(|e| TraceError::Json(e.0))?;
        if trace.header.version != TRACE_FORMAT_VERSION {
            return Err(TraceError::Version {
                found: trace.header.version,
                supported: TRACE_FORMAT_VERSION,
            });
        }
        if trace.header.events != trace.events.len() as u64 {
            return Err(TraceError::EventCount {
                header: trace.header.events,
                actual: trace.events.len() as u64,
            });
        }
        Ok(trace)
    }
}

/// Trace decoding failures — one type across both on-disk encodings
/// (the JSON debug format and the binary columnar format of
/// `spinrace-tracefmt`), so every load path surfaces the same structured
/// errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The text is not a valid trace document.
    Json(String),
    /// The trace was recorded with an unsupported format version.
    Version {
        /// Version in the parsed header.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The header's event count disagrees with the stream (truncation).
    EventCount {
        /// Count claimed by the header.
        header: u64,
        /// Events actually present.
        actual: u64,
    },
    /// The file does not start with the binary trace magic (and is not
    /// JSON either) — wrong file, or the first bytes were destroyed.
    Magic,
    /// A binary chunk's stored checksum disagrees with its contents:
    /// corruption localized to one chunk, detected before any of its
    /// events are handed to a detector.
    Checksum {
        /// Zero-based index of the corrupt chunk.
        chunk: u32,
    },
    /// The binary stream holds a different number of chunks than its
    /// header block claims (truncated mid-stream, or trailing garbage).
    ChunkCount {
        /// Chunk count claimed by the header block.
        header: u32,
        /// Chunks actually present before the stream ended or broke.
        actual: u32,
    },
    /// Structural corruption inside an otherwise-framed binary block
    /// (bad column lengths, out-of-range dictionary index, overlong
    /// varint, …).
    Corrupt(String),
    /// An I/O failure while streaming the trace from its source.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Json(m) => write!(f, "malformed trace: {m}"),
            TraceError::Version { found, supported } => {
                write!(f, "trace format version {found} (supported: {supported})")
            }
            TraceError::EventCount { header, actual } => {
                write!(
                    f,
                    "trace truncated: header says {header} events, found {actual}"
                )
            }
            TraceError::Magic => write!(f, "not a trace file: bad magic bytes"),
            TraceError::Checksum { chunk } => {
                write!(f, "trace chunk {chunk} is corrupt (checksum mismatch)")
            }
            TraceError::ChunkCount { header, actual } => {
                write!(
                    f,
                    "trace truncated: header says {header} chunk(s), found {actual}"
                )
            }
            TraceError::Corrupt(m) => write!(f, "corrupt trace: {m}"),
            TraceError::Io(m) => write!(f, "trace read failed: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// An [`EventSink`] that buffers the stream for a [`Trace`]. Use directly
/// (teed with a detector) or through [`record_run`].
pub struct TraceRecorder {
    module_name: String,
    module_fingerprint: u64,
    tool_label: String,
    vm: VmConfig,
    events: Vec<Event>,
}

impl TraceRecorder {
    /// Recorder for one run of (prepared) `m` under `vm`.
    pub fn new(m: &Module, vm: VmConfig) -> TraceRecorder {
        TraceRecorder {
            module_name: m.name.clone(),
            module_fingerprint: m.fingerprint(),
            tool_label: String::new(),
            vm,
            events: Vec::new(),
        }
    }

    /// Tag the trace with a producer label (e.g. a tool label).
    pub fn labeled(mut self, label: impl Into<String>) -> TraceRecorder {
        self.tool_label = label.into();
        self
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True before the first event.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Seal the recording into a [`Trace`].
    pub fn finish(self, summary: RunSummary) -> Trace {
        Trace {
            header: TraceHeader {
                version: TRACE_FORMAT_VERSION,
                module_name: self.module_name,
                module_fingerprint: self.module_fingerprint,
                tool_label: self.tool_label,
                vm: self.vm,
                events: self.events.len() as u64,
            },
            summary,
            events: self.events,
        }
    }
}

impl EventSink for TraceRecorder {
    fn on_event(&mut self, ev: &Event) {
        self.events.push(ev.clone());
    }
}

/// Execute `m` under `vm` and record the run as a labeled [`Trace`].
pub fn record_run(m: &Module, vm: VmConfig, label: impl Into<String>) -> Result<Trace, VmError> {
    let mut rec = TraceRecorder::new(m, vm).labeled(label);
    let summary = run_module(m, vm, &mut rec)?;
    Ok(rec.finish(summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RecordingSink;
    use spinrace_tir::ModuleBuilder;

    fn handoff() -> Module {
        let mut mb = ModuleBuilder::new("trace-test");
        let flag = mb.global("flag", 1);
        let data = mb.global("data", 1);
        let waiter = mb.function("waiter", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            let d = f.load(data.at(0));
            f.output(d);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t = f.spawn(waiter, 0);
            f.store(data.at(0), 42);
            f.store(flag.at(0), 1);
            f.join(t);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    #[test]
    fn record_replay_reproduces_the_stream() {
        let m = handoff();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        assert!(trace.matches_module(&m));
        assert_eq!(trace.header.events as usize, trace.events.len());
        let mut sink = RecordingSink::default();
        trace.replay(&mut sink);
        assert_eq!(sink.events, trace.events);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let m = handoff();
        let trace = record_run(&m, VmConfig::random(7), "rt").unwrap();
        assert_eq!(trace.header.seed(), Some(7));
        let parsed = Trace::from_json(&trace.to_json()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn version_and_count_are_validated() {
        let m = handoff();
        let mut trace = record_run(&m, VmConfig::round_robin(), "").unwrap();
        trace.header.version = 99;
        assert!(matches!(
            Trace::from_json(&trace.to_json()),
            Err(TraceError::Version { found: 99, .. })
        ));
        trace.header.version = TRACE_FORMAT_VERSION;
        trace.header.events += 1;
        assert!(matches!(
            Trace::from_json(&trace.to_json()),
            Err(TraceError::EventCount { .. })
        ));
        assert!(Trace::from_json("{not json").is_err());
    }
}
