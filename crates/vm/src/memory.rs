//! Flat word-addressed memory: globals segment + bump-allocated heap.

use spinrace_tir::Module;

/// The shared memory of a running program.
///
/// Addresses are word-granular `u64`s. Globals occupy
/// `[Module::GLOBAL_BASE, heap_base)`; `Alloc` hands out heap words above
/// that. Reads and writes are bounds-checked so stray pointers fault
/// deterministically instead of corrupting unrelated state.
pub struct Memory {
    global_base: u64,
    globals: Vec<i64>,
    heap_base: u64,
    heap: Vec<i64>,
}

impl Memory {
    /// Initialize from a module's global declarations.
    pub fn new(m: &Module) -> Memory {
        let words = m.globals_words() as usize;
        let mut globals = vec![0i64; words];
        let mut off = 0usize;
        for g in &m.globals {
            for (i, v) in g.init.iter().enumerate() {
                globals[off + i] = *v;
            }
            off += g.words as usize;
        }
        Memory {
            global_base: Module::GLOBAL_BASE,
            globals,
            heap_base: m.heap_base(),
            heap: Vec::new(),
        }
    }

    /// Allocate `words` fresh zeroed heap words, returning the base address.
    pub fn alloc(&mut self, words: u64) -> u64 {
        let base = self.heap_base + self.heap.len() as u64;
        self.heap.extend(std::iter::repeat_n(0, words as usize));
        base
    }

    /// Read one word.
    pub fn read(&self, addr: u64) -> Result<i64, String> {
        self.slot(addr).map(|(v, _)| v)
    }

    /// Write one word.
    pub fn write(&mut self, addr: u64, value: i64) -> Result<(), String> {
        if addr >= self.global_base && addr < self.heap_base {
            self.globals[(addr - self.global_base) as usize] = value;
            Ok(())
        } else if addr >= self.heap_base && addr < self.heap_base + self.heap.len() as u64 {
            self.heap[(addr - self.heap_base) as usize] = value;
            Ok(())
        } else {
            Err(format!("wild store to address {addr:#x}"))
        }
    }

    fn slot(&self, addr: u64) -> Result<(i64, ()), String> {
        if addr >= self.global_base && addr < self.heap_base {
            Ok((self.globals[(addr - self.global_base) as usize], ()))
        } else if addr >= self.heap_base && addr < self.heap_base + self.heap.len() as u64 {
            Ok((self.heap[(addr - self.heap_base) as usize], ()))
        } else {
            Err(format!("wild load from address {addr:#x}"))
        }
    }

    /// Total allocated words (globals + heap) — used by memory metrics.
    pub fn words(&self) -> usize {
        self.globals.len() + self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::ModuleBuilder;

    fn mem() -> (Memory, u64) {
        let mut mb = ModuleBuilder::new("m");
        let _a = mb.global_init("a", 2, vec![7]);
        mb.entry("main", |f| f.ret(None));
        let m = mb.finish().unwrap();
        let base = Module::GLOBAL_BASE;
        (Memory::new(&m), base)
    }

    #[test]
    fn globals_are_initialized() {
        let (mem, base) = mem();
        assert_eq!(mem.read(base).unwrap(), 7);
        assert_eq!(mem.read(base + 1).unwrap(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let (mut mem, base) = mem();
        mem.write(base + 1, -5).unwrap();
        assert_eq!(mem.read(base + 1).unwrap(), -5);
    }

    #[test]
    fn wild_accesses_fault() {
        let (mut mem, base) = mem();
        assert!(mem.read(0).is_err());
        assert!(mem.read(base + 2).is_err());
        assert!(mem.write(base + 999, 1).is_err());
    }

    #[test]
    fn heap_allocation_extends_address_space() {
        let (mut mem, base) = mem();
        let p = mem.alloc(3);
        assert_eq!(p, base + 2);
        mem.write(p + 2, 9).unwrap();
        assert_eq!(mem.read(p + 2).unwrap(), 9);
        assert!(mem.read(p + 3).is_err());
        let q = mem.alloc(1);
        assert_eq!(q, p + 3);
    }
}
