//! Library-mode synchronization object state (the VM's "pthread library").
//!
//! Objects are identified by the memory address of their first word; the
//! words themselves are never touched, mirroring how a detector with
//! library knowledge treats primitives as opaque. The `nolib`
//! configuration never reaches this module — `spinrace-synclib` lowers the
//! operations to plain memory instructions first.

use crate::events::ThreadId;
use std::collections::{HashMap, VecDeque};

/// Mutex: owner + FIFO wait queue (direct handoff on unlock).
#[derive(Clone, Debug, Default)]
pub struct MutexState {
    /// Current owner.
    pub owner: Option<ThreadId>,
    /// Threads waiting to acquire, FIFO.
    pub waiters: VecDeque<ThreadId>,
}

/// Condition variable: FIFO wait queue.
#[derive(Clone, Debug, Default)]
pub struct CondState {
    /// Sleeping waiters, FIFO.
    pub waiters: VecDeque<ThreadId>,
}

/// Barrier: parties / arrivals / generation.
#[derive(Clone, Debug)]
pub struct BarrierState {
    /// Number of threads per round.
    pub parties: u32,
    /// Arrivals in the current round (excluding releases).
    pub arrived: u32,
    /// Completed rounds.
    pub gen: u64,
    /// Threads blocked in the current round.
    pub waiters: Vec<ThreadId>,
}

/// Counting semaphore.
#[derive(Clone, Debug, Default)]
pub struct SemState {
    /// Current count.
    pub count: i64,
    /// Blocked `P` callers, FIFO.
    pub waiters: VecDeque<ThreadId>,
}

/// All library synchronization objects, keyed by address.
#[derive(Clone, Debug, Default)]
pub struct SyncState {
    /// Mutexes (created lazily on first lock).
    pub mutexes: HashMap<u64, MutexState>,
    /// Condition variables (created lazily).
    pub conds: HashMap<u64, CondState>,
    /// Barriers (must be initialized via `BarrierInit`).
    pub barriers: HashMap<u64, BarrierState>,
    /// Semaphores (must be initialized via `SemInit`).
    pub sems: HashMap<u64, SemState>,
}

impl SyncState {
    /// Mutex at `addr`, created on demand.
    pub fn mutex(&mut self, addr: u64) -> &mut MutexState {
        self.mutexes.entry(addr).or_default()
    }
    /// Condition variable at `addr`, created on demand.
    pub fn cond(&mut self, addr: u64) -> &mut CondState {
        self.conds.entry(addr).or_default()
    }
    /// Semaphore at `addr` if initialized.
    pub fn sem(&mut self, addr: u64) -> Option<&mut SemState> {
        self.sems.get_mut(&addr)
    }
    /// Barrier at `addr` if initialized.
    pub fn barrier(&mut self, addr: u64) -> Option<&mut BarrierState> {
        self.barriers.get_mut(&addr)
    }
    /// Approximate retained bytes (memory metrics).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.mutexes.len() * (size_of::<u64>() + size_of::<MutexState>())
            + self.conds.len() * (size_of::<u64>() + size_of::<CondState>())
            + self.barriers.len() * (size_of::<u64>() + size_of::<BarrierState>())
            + self.sems.len() * (size_of::<u64>() + size_of::<SemState>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_mutex_creation() {
        let mut s = SyncState::default();
        assert!(s.mutex(0x1000).owner.is_none());
        s.mutex(0x1000).owner = Some(3);
        assert_eq!(s.mutex(0x1000).owner, Some(3));
        assert_eq!(s.mutexes.len(), 1);
    }

    #[test]
    fn uninitialized_barrier_is_absent() {
        let mut s = SyncState::default();
        assert!(s.barrier(0x2000).is_none());
        s.barriers.insert(
            0x2000,
            BarrierState {
                parties: 2,
                arrived: 0,
                gen: 0,
                waiters: vec![],
            },
        );
        assert!(s.barrier(0x2000).is_some());
    }
}
