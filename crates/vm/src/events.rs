//! The event stream: what the VM tells a race detector.

use serde::{Deserialize, Serialize};
use spinrace_tir::{MemOrder, Pc, SpinLoopId};

/// Dynamic thread identifier (0 = main thread).
pub type ThreadId = u32;

/// One observable action, in program-order per thread and in a globally
/// consistent total order across threads (the VM interleaves whole
/// instructions).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// `parent` created `child`.
    Spawn {
        parent: ThreadId,
        child: ThreadId,
        pc: Pc,
    },
    /// `parent` observed `child`'s termination.
    Join {
        parent: ThreadId,
        child: ThreadId,
        pc: Pc,
    },
    /// A thread finished (root frame returned).
    ThreadEnd { tid: ThreadId },

    /// A load. `atomic` carries the ordering for atomic loads; `spin` is
    /// set when the load is a tagged spin-condition load executed inside
    /// an active spin-loop instance.
    Read {
        tid: ThreadId,
        addr: u64,
        value: i64,
        pc: Pc,
        /// Hash of the call chain (Helgrind-style stack context); used to
        /// distinguish report contexts arising from shared library code.
        stack: u64,
        atomic: Option<MemOrder>,
        spin: Option<SpinLoopId>,
    },
    /// A store.
    Write {
        tid: ThreadId,
        addr: u64,
        value: i64,
        pc: Pc,
        /// Call-chain hash (see [`Event::Read::stack`]).
        stack: u64,
        atomic: Option<MemOrder>,
    },
    /// A successful atomic read-modify-write (CAS or RMW).
    Update {
        tid: ThreadId,
        addr: u64,
        old: i64,
        new: i64,
        pc: Pc,
        /// Call-chain hash (see [`Event::Read::stack`]).
        stack: u64,
        order: MemOrder,
    },
    /// A memory fence.
    Fence {
        tid: ThreadId,
        order: MemOrder,
        pc: Pc,
    },

    /// Mutex acquired (library mode).
    MutexLock { tid: ThreadId, mutex: u64, pc: Pc },
    /// Mutex released (library mode).
    MutexUnlock { tid: ThreadId, mutex: u64, pc: Pc },
    /// Condition variable signalled (one waiter released if any).
    CondSignal { tid: ThreadId, cv: u64, pc: Pc },
    /// Condition variable broadcast.
    CondBroadcast { tid: ThreadId, cv: u64, pc: Pc },
    /// A `CondWait` returned (signal received *and* mutex re-acquired).
    CondWaitReturn {
        tid: ThreadId,
        cv: u64,
        mutex: u64,
        pc: Pc,
    },
    /// Thread arrived at a barrier (generation `gen`).
    BarrierEnter {
        tid: ThreadId,
        barrier: u64,
        gen: u64,
        pc: Pc,
    },
    /// Thread released from a barrier (generation `gen`).
    BarrierLeave {
        tid: ThreadId,
        barrier: u64,
        gen: u64,
        pc: Pc,
    },
    /// Semaphore V.
    SemPost { tid: ThreadId, sem: u64, pc: Pc },
    /// Semaphore P completed.
    SemAcquired { tid: ThreadId, sem: u64, pc: Pc },

    /// A thread entered an instrumented spinning read loop.
    SpinEnter { tid: ThreadId, spin: SpinLoopId },
    /// A thread left an instrumented spinning read loop. `reads` lists the
    /// `(address, load-pc)` pairs of the *final* iteration's condition
    /// loads — the reads whose observed values allowed the exit, i.e. the
    /// read side of the paper's write/read dependency.
    SpinExit {
        tid: ThreadId,
        spin: SpinLoopId,
        reads: Vec<(u64, Pc)>,
    },

    /// `Output` instruction (program result logging).
    Output { tid: ThreadId, value: i64 },
}

impl Event {
    /// The thread performing the event.
    pub fn tid(&self) -> ThreadId {
        match self {
            Event::Spawn { parent, .. } | Event::Join { parent, .. } => *parent,
            Event::ThreadEnd { tid }
            | Event::Read { tid, .. }
            | Event::Write { tid, .. }
            | Event::Update { tid, .. }
            | Event::Fence { tid, .. }
            | Event::MutexLock { tid, .. }
            | Event::MutexUnlock { tid, .. }
            | Event::CondSignal { tid, .. }
            | Event::CondBroadcast { tid, .. }
            | Event::CondWaitReturn { tid, .. }
            | Event::BarrierEnter { tid, .. }
            | Event::BarrierLeave { tid, .. }
            | Event::SemPost { tid, .. }
            | Event::SemAcquired { tid, .. }
            | Event::SpinEnter { tid, .. }
            | Event::SpinExit { tid, .. }
            | Event::Output { tid, .. } => *tid,
        }
    }

    /// True for plain (non-atomic, non-spin) data accesses — the events a
    /// race detector must check.
    pub fn is_plain_access(&self) -> bool {
        matches!(
            self,
            Event::Read {
                atomic: None,
                spin: None,
                ..
            } | Event::Write { atomic: None, .. }
        )
    }

    /// The single data address this event touches (`Read`/`Write`/
    /// `Update`), if any. Data accesses are the only events whose effect
    /// can be confined to one memory word — the property partitioned
    /// replay exploits when it routes an event to the worker owning that
    /// word's shadow shard instead of broadcasting it.
    pub fn data_addr(&self) -> Option<u64> {
        match self {
            Event::Read { addr, .. } | Event::Write { addr, .. } | Event::Update { addr, .. } => {
                Some(*addr)
            }
            _ => None,
        }
    }
}

/// Consumer of the VM's event stream.
///
/// Delivery contract: the interpreter synthesizes each [`Event`] once, on
/// its stack, and hands it to the sink **by reference, synchronously** —
/// there is no per-event queue or buffering copy between the VM and a
/// detector. Sinks that need to retain events must copy them explicitly
/// ([`RecordingSink`] is the canonical buffering sink); a detector reads
/// the fields it needs and keeps nothing, which is what makes the
/// replay-from-recording path of the benches equivalent to live runs.
pub trait EventSink {
    /// Called for every event, in execution order.
    fn on_event(&mut self, ev: &Event);
}

/// Discards all events.
#[derive(Default)]
pub struct NullSink;
impl EventSink for NullSink {
    fn on_event(&mut self, _ev: &Event) {}
}

/// Records all events (tests and trace dumps).
#[derive(Default)]
pub struct RecordingSink {
    /// The recorded stream.
    pub events: Vec<Event>,
}
impl EventSink for RecordingSink {
    fn on_event(&mut self, ev: &Event) {
        self.events.push(ev.clone());
    }
}

/// `&mut S` forwards to `S`, so borrowed sinks compose with the owned
/// combinators below without lifetime-bound wrapper types.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn on_event(&mut self, ev: &Event) {
        (**self).on_event(ev);
    }
}

impl<S: EventSink + ?Sized> EventSink for Box<S> {
    fn on_event(&mut self, ev: &Event) {
        (**self).on_event(ev);
    }
}

/// Tee: duplicates one stream into two sinks, first `a` then `b`. Owned
/// and generic — monomorphized call sites keep the per-event cost at two
/// direct calls, and either slot can hold `&mut` to an external sink (the
/// recorder-plus-detector path records a trace while detecting live).
/// Nest tees for wider fan-out, or use [`FanoutSink`] for a dynamic set.
pub struct Tee<A, B> {
    /// First receiver (e.g. a [`crate::TraceRecorder`]).
    pub a: A,
    /// Second receiver (e.g. a race detector).
    pub b: B,
}

impl<A, B> Tee<A, B> {
    /// Tee into `a` then `b`.
    pub fn new(a: A, b: B) -> Tee<A, B> {
        Tee { a, b }
    }

    /// Recover the sinks.
    pub fn into_inner(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: EventSink, B: EventSink> EventSink for Tee<A, B> {
    fn on_event(&mut self, ev: &Event) {
        self.a.on_event(ev);
        self.b.on_event(ev);
    }
}

/// Fans one stream out to a dynamic number of owned sinks (the rare case
/// where the fan-out width is only known at run time; prefer [`Tee`]).
#[derive(Default)]
pub struct FanoutSink {
    /// The sinks, invoked in order.
    pub sinks: Vec<Box<dyn EventSink>>,
}

impl FanoutSink {
    /// Add a sink to the end of the fan-out order.
    pub fn push(&mut self, sink: impl EventSink + 'static) {
        self.sinks.push(Box::new(sink));
    }
}

impl EventSink for FanoutSink {
    fn on_event(&mut self, ev: &Event) {
        for s in self.sinks.iter_mut() {
            s.on_event(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::{BlockId, FuncId};

    #[test]
    fn plain_access_classification() {
        let pc = Pc::new(FuncId(0), BlockId(0), 0);
        let plain = Event::Read {
            tid: 1,
            addr: 0x1000,
            value: 0,
            pc,
            stack: 0,
            atomic: None,
            spin: None,
        };
        assert!(plain.is_plain_access());
        let spin = Event::Read {
            tid: 1,
            addr: 0x1000,
            value: 0,
            pc,
            stack: 0,
            atomic: None,
            spin: Some(SpinLoopId(0)),
        };
        assert!(!spin.is_plain_access());
        let atomic = Event::Write {
            tid: 1,
            addr: 0x1000,
            value: 0,
            pc,
            stack: 0,
            atomic: Some(MemOrder::Release),
        };
        assert!(!atomic.is_plain_access());
        // data_addr covers all access flavors, and nothing else.
        assert_eq!(plain.data_addr(), Some(0x1000));
        assert_eq!(atomic.data_addr(), Some(0x1000));
        let upd = Event::Update {
            tid: 1,
            addr: 0x2000,
            old: 0,
            new: 1,
            pc,
            stack: 0,
            order: MemOrder::SeqCst,
        };
        assert_eq!(upd.data_addr(), Some(0x2000));
        assert_eq!(Event::Output { tid: 0, value: 1 }.data_addr(), None);
        assert_eq!(
            Event::MutexLock {
                tid: 0,
                mutex: 0x3000,
                pc
            }
            .data_addr(),
            None,
            "sync-object addresses are not data addresses"
        );
    }

    #[test]
    fn tee_duplicates_in_order_and_borrows_compose() {
        let mut external = RecordingSink::default();
        let mut tee = Tee::new(RecordingSink::default(), &mut external);
        tee.on_event(&Event::Output { tid: 0, value: 1 });
        tee.on_event(&Event::Output { tid: 1, value: 2 });
        let (owned, _) = tee.into_inner();
        assert_eq!(owned.events.len(), 2);
        assert_eq!(external.events, owned.events);

        let mut fan = FanoutSink::default();
        fan.push(RecordingSink::default());
        fan.push(NullSink);
        fan.on_event(&Event::Output { tid: 0, value: 3 });
    }

    #[test]
    fn recording_sink_keeps_order() {
        let pc = Pc::new(FuncId(0), BlockId(0), 0);
        let mut sink = RecordingSink::default();
        sink.on_event(&Event::Output { tid: 0, value: 1 });
        sink.on_event(&Event::Fence {
            tid: 0,
            order: MemOrder::SeqCst,
            pc,
        });
        assert_eq!(sink.events.len(), 2);
        assert!(matches!(sink.events[0], Event::Output { .. }));
    }
}
