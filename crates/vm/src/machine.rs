//! Per-thread execution state: frames, registers, blocking states, and the
//! per-frame stacks of active spin-loop instances.

use crate::events::ThreadId;
use spinrace_tir::{BlockId, FuncId, Pc, Reg};

/// Why a thread is not currently runnable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Ready to execute.
    Runnable,
    /// Waiting to acquire `mutex`. When `for_cond` is set, the thread is
    /// re-acquiring after a condition wait and must emit `CondWaitReturn`
    /// once it owns the mutex again.
    BlockedMutex { mutex: u64, for_cond: Option<u64> },
    /// Sleeping on a condition variable (mutex already released).
    BlockedCond { cv: u64, mutex: u64 },
    /// Waiting for another thread to finish.
    BlockedJoin { target: ThreadId },
    /// Waiting at a barrier.
    BlockedBarrier { barrier: u64, gen: u64 },
    /// Waiting on a semaphore.
    BlockedSem { sem: u64 },
    /// Terminated.
    Finished,
}

impl ThreadState {
    /// Human-readable description (deadlock reports).
    pub fn describe(&self) -> String {
        match self {
            ThreadState::Runnable => "runnable".into(),
            ThreadState::BlockedMutex { mutex, .. } => format!("waiting for mutex {mutex:#x}"),
            ThreadState::BlockedCond { cv, .. } => format!("waiting on condvar {cv:#x}"),
            ThreadState::BlockedJoin { target } => format!("joining thread {target}"),
            ThreadState::BlockedBarrier { barrier, .. } => {
                format!("waiting at barrier {barrier:#x}")
            }
            ThreadState::BlockedSem { sem } => format!("waiting on semaphore {sem:#x}"),
            ThreadState::Finished => "finished".into(),
        }
    }
}

/// A live spin-loop instance on a frame's spin stack.
#[derive(Clone, Debug)]
pub struct ActiveSpin {
    /// Index into the module's `SpinTable::loops`.
    pub loop_idx: usize,
    /// Tagged condition reads of the *current* iteration:
    /// `(address, load pc)`. Reset at every header re-entry; on exit these
    /// are the final iteration's reads.
    pub reads: Vec<(u64, Pc)>,
}

/// Seed of the incremental call-chain hash (FNV-1a offset basis).
pub const STACK_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Multiplier of the incremental call-chain hash (FNV-1a prime).
pub const STACK_HASH_PRIME: u64 = 0x1000_0000_01b3;

/// One call frame.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Function executing in this frame.
    pub func: FuncId,
    /// Current block.
    pub block: BlockId,
    /// Next instruction index within the block (`len` = terminator).
    pub ip: u32,
    /// Register file.
    pub regs: Vec<i64>,
    /// Where the caller wants the return value (None for root frames or
    /// value-discarding calls).
    pub ret_to: Option<Reg>,
    /// Active spin-loop instances (innermost last).
    pub spins: Vec<ActiveSpin>,
    /// Call-chain hash prefix: the fold over every frame *below* this one
    /// (each contributing its call-site position, frozen while the callee
    /// runs). The full Helgrind-style stack context of a memory event is
    /// `(ctx ^ func) * STACK_HASH_PRIME` — O(1) per event instead of a
    /// walk over the frame stack. Root frames carry the seed.
    pub ctx: u64,
}

impl Frame {
    /// Fresh frame at the entry block of `func`. `ctx` starts at the root
    /// seed; `Call` sites overwrite it with the caller's extended prefix.
    pub fn new(func: FuncId, num_regs: u16, ret_to: Option<Reg>) -> Frame {
        Frame {
            func,
            block: BlockId(0),
            ip: 0,
            regs: vec![0; num_regs as usize],
            ret_to,
            spins: Vec::new(),
            ctx: STACK_HASH_SEED,
        }
    }

    /// The `Pc` of the instruction about to execute.
    pub fn pc(&self) -> Pc {
        Pc::new(self.func, self.block, self.ip)
    }
}

/// A thread: a stack of frames plus a blocking state.
#[derive(Clone, Debug)]
pub struct Thread {
    /// Dynamic id (0 = main).
    pub id: ThreadId,
    /// Call stack (root first).
    pub frames: Vec<Frame>,
    /// Blocking state.
    pub state: ThreadState,
}

impl Thread {
    /// New runnable thread with a single root frame.
    pub fn new(id: ThreadId, root: Frame) -> Thread {
        Thread {
            id,
            frames: vec![root],
            state: ThreadState::Runnable,
        }
    }

    /// Top (current) frame.
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("live thread has a frame")
    }

    /// Top (current) frame, mutable.
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("live thread has a frame")
    }

    /// Innermost active spin instance across all frames (topmost frame
    /// with a non-empty spin stack), as `(frame index, spin index)`.
    pub fn innermost_spin(&self) -> Option<(usize, usize)> {
        for (fi, f) in self.frames.iter().enumerate().rev() {
            if !f.spins.is_empty() {
                return Some((fi, f.spins.len() - 1));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn innermost_spin_prefers_top_frames() {
        let mut t = Thread::new(0, Frame::new(FuncId(0), 4, None));
        t.frames[0].spins.push(ActiveSpin {
            loop_idx: 0,
            reads: vec![],
        });
        t.frames.push(Frame::new(FuncId(1), 2, None));
        assert_eq!(t.innermost_spin(), Some((0, 0)));
        t.frames[1].spins.push(ActiveSpin {
            loop_idx: 1,
            reads: vec![],
        });
        assert_eq!(t.innermost_spin(), Some((1, 0)));
    }

    #[test]
    fn describe_states() {
        assert!(ThreadState::BlockedJoin { target: 3 }
            .describe()
            .contains("joining"));
        assert_eq!(ThreadState::Runnable.describe(), "runnable");
    }
}
