//! Runtime tracking of spin-loop instances.
//!
//! The instrumentation phase marks loops statically; at run time the VM
//! must know, per thread and frame, which instances are live, reset their
//! read sets at each iteration (header re-entry) and report the final
//! iteration's reads on exit. This module precomputes the lookup tables
//! and encodes the block-transition bookkeeping as a small list of
//! [`SpinAction`]s the interpreter turns into events.

use crate::machine::{ActiveSpin, Frame};
use spinrace_tir::{BlockId, FuncId, Module, Pc, SpinLoopId};
use std::collections::{HashMap, HashSet};

/// What happened to the frame's spin stack on a block transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpinAction {
    /// An instance was entered.
    Enter(SpinLoopId),
    /// An instance exited; carries the final iteration's `(addr, pc)` reads.
    Exit(SpinLoopId, Vec<(u64, Pc)>),
}

/// Precomputed spin-table lookups for one module.
#[derive(Clone, Debug, Default)]
pub struct SpinRuntime {
    /// `(func, header block)` → loop index.
    headers: HashMap<(FuncId, BlockId), usize>,
    /// Per loop index: member-block set.
    blocks: Vec<HashSet<BlockId>>,
    /// Per loop index: its public id.
    ids: Vec<SpinLoopId>,
    /// Tagged condition-load locations.
    tagged: HashSet<Pc>,
}

impl SpinRuntime {
    /// Build from the module's spin table (empty runtime if none).
    pub fn new(m: &Module) -> SpinRuntime {
        let mut rt = SpinRuntime::default();
        if let Some(spin) = &m.spin {
            for (idx, info) in spin.loops.iter().enumerate() {
                rt.headers.insert((info.func, info.header), idx);
                rt.blocks.insert(idx, info.blocks.iter().copied().collect());
                rt.ids.insert(idx, info.id);
            }
            rt.tagged = spin.tagged_loads.keys().copied().collect();
        }
        rt
    }

    /// Is the load at `pc` a tagged spin-condition load?
    pub fn is_tagged(&self, pc: Pc) -> bool {
        self.tagged.contains(&pc)
    }

    /// Public id of loop `idx`.
    pub fn id(&self, idx: usize) -> SpinLoopId {
        self.ids[idx]
    }

    /// Update `frame`'s spin stack for a transition to `block`. Returns
    /// the actions in event order (exits outer-to-inner... i.e. inner
    /// first, then possibly one enter).
    pub fn on_block_entry(&self, frame: &mut Frame, block: BlockId) -> Vec<SpinAction> {
        let mut actions = Vec::new();
        // Pop instances whose loop no longer contains the block.
        while let Some(top) = frame.spins.last() {
            if self.blocks[top.loop_idx].contains(&block) {
                break;
            }
            let top = frame.spins.pop().expect("checked non-empty");
            actions.push(SpinAction::Exit(self.ids[top.loop_idx], top.reads));
        }
        // Entering (or re-entering) a header?
        if let Some(&idx) = self.headers.get(&(frame.func, block)) {
            match frame.spins.last_mut() {
                Some(top) if top.loop_idx == idx => {
                    // Back edge: new iteration, reset the read set.
                    top.reads.clear();
                }
                _ => {
                    frame.spins.push(ActiveSpin {
                        loop_idx: idx,
                        reads: Vec::new(),
                    });
                    actions.push(SpinAction::Enter(self.ids[idx]));
                }
            }
        }
        actions
    }

    /// Drain all live instances of a frame (frame pop / thread end).
    pub fn drain_frame(&self, frame: &mut Frame) -> Vec<SpinAction> {
        let mut actions = Vec::new();
        while let Some(top) = frame.spins.pop() {
            actions.push(SpinAction::Exit(self.ids[top.loop_idx], top.reads));
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::{SpinLoopInfo, SpinTable};

    fn runtime_with_loop(func: FuncId, header: u32, blocks: &[u32]) -> SpinRuntime {
        let mut mb = spinrace_tir::ModuleBuilder::new("t");
        mb.entry("main", |f| f.ret(None));
        let mut m = mb.finish().unwrap();
        let mut table = SpinTable::default();
        table.loops.push(SpinLoopInfo {
            id: SpinLoopId(0),
            func,
            header: BlockId(header),
            blocks: blocks.iter().map(|b| BlockId(*b)).collect(),
            cond_loads: vec![],
            weight: blocks.len() as u32,
        });
        m.spin = Some(table);
        SpinRuntime::new(&m)
    }

    #[test]
    fn enter_iterate_exit() {
        let rt = runtime_with_loop(FuncId(0), 1, &[1, 2]);
        let mut frame = Frame::new(FuncId(0), 0, None);

        // entry block 0: nothing
        assert!(rt.on_block_entry(&mut frame, BlockId(0)).is_empty());
        // into the header: enter
        let a = rt.on_block_entry(&mut frame, BlockId(1));
        assert_eq!(a, vec![SpinAction::Enter(SpinLoopId(0))]);
        // record a read, move to body, back to header: reads reset
        frame.spins[0]
            .reads
            .push((0x1000, Pc::new(FuncId(0), BlockId(1), 0)));
        assert!(rt.on_block_entry(&mut frame, BlockId(2)).is_empty());
        assert!(rt.on_block_entry(&mut frame, BlockId(1)).is_empty());
        assert!(frame.spins[0].reads.is_empty(), "iteration reset");
        // final iteration reads
        frame.spins[0]
            .reads
            .push((0x1001, Pc::new(FuncId(0), BlockId(1), 0)));
        // leave to block 3: exit with final reads
        let a = rt.on_block_entry(&mut frame, BlockId(3));
        match &a[..] {
            [SpinAction::Exit(id, reads)] => {
                assert_eq!(*id, SpinLoopId(0));
                assert_eq!(reads.len(), 1);
                assert_eq!(reads[0].0, 0x1001);
            }
            other => panic!("unexpected actions {other:?}"),
        }
        assert!(frame.spins.is_empty());
    }

    #[test]
    fn drain_on_frame_pop() {
        let rt = runtime_with_loop(FuncId(0), 1, &[1]);
        let mut frame = Frame::new(FuncId(0), 0, None);
        rt.on_block_entry(&mut frame, BlockId(1));
        let a = rt.drain_frame(&mut frame);
        assert_eq!(a.len(), 1);
        assert!(matches!(a[0], SpinAction::Exit(..)));
    }

    #[test]
    fn untracked_function_is_noop() {
        let rt = runtime_with_loop(FuncId(5), 1, &[1]);
        let mut frame = Frame::new(FuncId(0), 0, None);
        assert!(rt.on_block_entry(&mut frame, BlockId(1)).is_empty());
        assert!(frame.spins.is_empty());
    }
}
