//! Sharded parallel replay: the detector-side mechanics.
//!
//! A recorded trace can be detected in parallel by partitioning its plain
//! data accesses along [`ShadowTable`](crate::shadow::ShadowTable)'s shard
//! seam: each worker owns a set of shards (fixed by a [`SchedulePlan`] —
//! either the static modular split `s % W == i` or an occupancy-aware
//! LPT packing, see [`Schedule`]), processes the plain accesses whose
//! addresses fall in its shards, and replicates all synchronization
//! events (spawn/join, locks, condvars, barriers, semaphores, atomics,
//! spin promotion/exit) so its per-thread vector clocks evolve
//! **exactly** as the sequential detector's do. Ownership may move
//! between workers at plan boundaries — a deterministic, pre-planned
//! form of work stealing in which the departing owner hands the whole
//! shard (shadow pages plus translated lockset ids, [`ShardHandoff`]) to
//! the new owner, so per-shard event order is untouched. Three
//! mechanisms make the merged result bit-identical to a sequential replay
//! (not merely equivalent):
//!
//! 1. **Promotion seeds** ([`compute_promotion_seeds`]) — promoting a spin
//!    condition location seeds its release clock from the location's last
//!    plain write, which only the owning worker's shadow memory has seen.
//!    A cheap sequential scalar pre-pass (per-thread own-clock counters
//!    plus last-write epochs for the promotion candidates; no vector
//!    clocks, no shadow memory) resolves every seed up front, and all
//!    workers promote from the shared table.
//! 2. **Tagged report attempts** — workers never touch a capped
//!    [`ReportCollector`]; they log each first-in-worker racy context as a
//!    [`TaggedReport`] carrying its global stream position. The merge
//!    sorts all attempts by position and replays them through one real
//!    collector, reproducing the sequential dedup order, representative
//!    reports, and cap saturation exactly.
//! 3. **Lockset op log** ([`LocksetOp`]) — the sequential
//!    [`LocksetTable`] interleaves base interns (lock events) with
//!    intersection interns (Eraser stage), so its memo sizes and id
//!    assignment are order-dependent. Worker 0 logs the base interns
//!    (identical in every worker), each owner logs its intersections, and
//!    the merge replays the ops in stream order against a fresh table —
//!    reproducing the sequential table byte-for-byte for the metrics.
//!
//! The orchestration (event routing, scoped thread pool) lives in
//! `spinrace_core::parallel`; this module owns everything that must stay
//! in lock-step with the detector's semantics.

use crate::config::DetectorConfig;
use crate::lockset::{LocksetId, LocksetTable};
use crate::metrics::DetectorMetrics;
use crate::report::{RaceReport, ReportCollector};
use crate::shadow::{shard_of, ExtractedShard, NUM_SHARDS};
use crate::vc::Epoch;
use fxhash::{FxHashMap, FxHashSet};
use spinrace_tir::Pc;
use spinrace_vm::Event;
use std::str::FromStr;
use std::sync::Arc;

/// How parallel replay assigns shards to workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Static modular ownership: worker `i` of `W` owns shard `s` iff
    /// `s % W == i`, for the whole stream. Oblivious to skew.
    Static,
    /// Occupancy-aware: a pre-pass histograms owner-routed events per
    /// shard and packs shards onto workers by LPT (longest processing
    /// time first) bin-packing, re-packing at chunk boundaries when the
    /// carried assignment has drifted badly out of balance (planned
    /// shard stealing). The default.
    #[default]
    Balanced,
}

impl Schedule {
    /// Stable lowercase name (CLI/JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            Schedule::Static => "static",
            Schedule::Balanced => "balanced",
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Schedule {
    type Err = String;
    fn from_str(s: &str) -> Result<Schedule, String> {
        match s {
            "static" => Ok(Schedule::Static),
            "balanced" => Ok(Schedule::Balanced),
            other => Err(format!("unknown schedule '{other}' (static|balanced)")),
        }
    }
}

/// One planned ownership transfer: at `boundary`, `shard` moves from
/// worker `from` to worker `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardTransfer {
    /// Index into [`SchedulePlan::boundaries`].
    pub boundary: usize,
    /// The shard that changes hands.
    pub shard: usize,
    /// Departing owner.
    pub from: usize,
    /// New owner.
    pub to: usize,
}

/// A precomputed shard-ownership schedule for one replay: phase 0 covers
/// events `[0, boundaries[0])`, phase `p > 0` covers
/// `[boundaries[p-1], boundaries[p])` (the last phase runs to the end of
/// the stream), and `assignments[p][s]` names the worker owning shard `s`
/// during phase `p`. Every worker carries the same `Arc`'d plan, so the
/// routing gate and the handoff protocol can never disagree about who
/// owns what when.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedulePlan {
    workers: usize,
    boundaries: Vec<u64>,
    assignments: Vec<[u8; NUM_SHARDS]>,
    occupancy: [u64; NUM_SHARDS],
}

/// LPT (longest processing time first) bin-packing of shard loads onto
/// workers: heaviest shard first, each to the currently least-loaded
/// worker; all ties break toward the lower index, so the packing is a
/// pure function of the histogram.
fn lpt(hist: &[u64; NUM_SHARDS], workers: usize) -> [u8; NUM_SHARDS] {
    let mut order: [usize; NUM_SHARDS] = std::array::from_fn(|s| s);
    order.sort_by_key(|&s| (std::cmp::Reverse(hist[s]), s));
    let mut load = vec![0u64; workers];
    let mut assignment = [0u8; NUM_SHARDS];
    for s in order {
        let w = (0..workers).min_by_key(|&w| (load[w], w)).unwrap_or(0);
        assignment[s] = w as u8;
        load[w] += hist[s];
    }
    assignment
}

/// The most-loaded worker's event count under `assignment` — the
/// makespan LPT minimizes.
fn max_load(hist: &[u64; NUM_SHARDS], assignment: &[u8; NUM_SHARDS], workers: usize) -> u64 {
    let mut load = vec![0u64; workers];
    for s in 0..NUM_SHARDS {
        load[assignment[s] as usize] += hist[s];
    }
    load.into_iter().max().unwrap_or(0)
}

impl SchedulePlan {
    /// The static modular assignment (`s % workers`), single phase.
    pub fn static_plan(workers: usize) -> SchedulePlan {
        let workers = workers.clamp(1, NUM_SHARDS);
        SchedulePlan {
            workers,
            boundaries: Vec::new(),
            assignments: vec![std::array::from_fn(|s| (s % workers) as u8)],
            occupancy: [0; NUM_SHARDS],
        }
    }

    /// Occupancy-aware plan with the default chunking: one eighth of the
    /// stream per chunk, but at least 65 536 events — small traces get a
    /// single phase (whole-stream LPT, zero handoffs).
    pub fn balanced(
        cfg: DetectorConfig,
        seeds: &PromotionSeeds,
        events: &[Event],
        workers: usize,
    ) -> SchedulePlan {
        SchedulePlan::balanced_chunked(cfg, seeds, events, workers, (events.len() / 8).max(65_536))
    }

    /// Occupancy-aware plan with an explicit chunk size (test hook).
    ///
    /// The pre-pass histograms [`EventRoute::Owner`]-routed events per
    /// shard and chunk (broadcast events cost every worker the same and
    /// don't affect balance). Phase 0 is the LPT packing of the first
    /// chunk; at each later chunk boundary the fresh LPT packing is
    /// adopted only when the carried assignment's makespan on that chunk
    /// exceeds the fresh one's by more than 25% — hysteresis that keeps
    /// stationary streams (like zipf, whose skew does not move) at zero
    /// handoffs while letting genuinely phase-shifting streams re-pack.
    pub fn balanced_chunked(
        cfg: DetectorConfig,
        seeds: &PromotionSeeds,
        events: &[Event],
        workers: usize,
        chunk: usize,
    ) -> SchedulePlan {
        let workers = workers.clamp(1, NUM_SHARDS);
        let chunk = chunk.max(1);
        let n_chunks = events.len().div_ceil(chunk).max(1);
        let mut hists = vec![[0u64; NUM_SHARDS]; n_chunks];
        let mut occupancy = [0u64; NUM_SHARDS];
        for (i, ev) in events.iter().enumerate() {
            if let EventRoute::Owner(addr) = event_route(cfg, seeds, ev) {
                let s = shard_of(addr);
                hists[i / chunk][s] += 1;
                occupancy[s] += 1;
            }
        }
        // First phase: LPT of the *whole* stream, not just the first
        // chunk — when the distribution is stationary this is the one
        // assignment the plan keeps throughout.
        let mut assignments = vec![lpt(&occupancy, workers)];
        let mut boundaries = Vec::new();
        for (k, hist) in hists.iter().enumerate().skip(1) {
            let cur = assignments.last().unwrap();
            let fresh = lpt(hist, workers);
            let carried = max_load(hist, cur, workers);
            let best = max_load(hist, &fresh, workers);
            // carried > 1.25 × best, in integers.
            if carried * 4 > best * 5 && fresh != *cur {
                boundaries.push((k * chunk) as u64);
                assignments.push(fresh);
            }
        }
        SchedulePlan {
            workers,
            boundaries,
            assignments,
            occupancy,
        }
    }

    /// Workers this plan schedules.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of phases (`boundaries().len() + 1`).
    pub fn phases(&self) -> usize {
        self.assignments.len()
    }

    /// Event indices at which a new phase begins (ascending; phase 0
    /// starts at event 0 implicitly).
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    /// Shard → worker assignment during `phase`.
    pub fn assignment(&self, phase: usize) -> &[u8; NUM_SHARDS] {
        &self.assignments[phase]
    }

    /// Owner-routed events per shard over the whole stream (all zeros
    /// for [`SchedulePlan::static_plan`], which never scans the stream).
    pub fn occupancy(&self) -> &[u64; NUM_SHARDS] {
        &self.occupancy
    }

    /// Every planned ownership transfer, boundary-major.
    pub fn transfers(&self) -> Vec<ShardTransfer> {
        let mut out = Vec::new();
        for b in 0..self.boundaries.len() {
            let (prev, next) = (&self.assignments[b], &self.assignments[b + 1]);
            for s in 0..NUM_SHARDS {
                if prev[s] != next[s] {
                    out.push(ShardTransfer {
                        boundary: b,
                        shard: s,
                        from: prev[s] as usize,
                        to: next[s] as usize,
                    });
                }
            }
        }
        out
    }

    /// Total planned shard handoffs.
    pub fn handoffs(&self) -> usize {
        self.transfers().len()
    }
}

/// Plain-access occupancy per shadow shard, configuration-free: the
/// skew diagnostic `trace stats` and the perf workload rows expose. (A
/// [`SchedulePlan`] uses a config-aware variant internally — routing
/// depends on the tool — but for observability the raw plain-access
/// distribution is the right tool-independent answer.)
pub fn shard_occupancy(events: &[Event]) -> [u64; NUM_SHARDS] {
    let mut hist = [0u64; NUM_SHARDS];
    for ev in events {
        if ev.is_plain_access() {
            if let Some(addr) = ev.data_addr() {
                hist[shard_of(addr)] += 1;
            }
        }
    }
    hist
}

/// One worker's identity in a replay pool: its index plus the shared
/// [`SchedulePlan`] saying which shards it owns in each phase.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    plan: Arc<SchedulePlan>,
    index: usize,
}

impl ShardSpec {
    /// Worker `index` of a statically scheduled `workers`-wide pool.
    pub fn static_spec(workers: usize, index: usize) -> ShardSpec {
        ShardSpec::planned(Arc::new(SchedulePlan::static_plan(workers)), index)
    }

    /// Worker `index` under an explicit plan.
    pub fn planned(plan: Arc<SchedulePlan>, index: usize) -> ShardSpec {
        assert!(
            index < plan.workers(),
            "invalid shard spec: worker {index}/{}",
            plan.workers()
        );
        ShardSpec { plan, index }
    }

    /// Total workers in the pool.
    pub fn workers(&self) -> usize {
        self.plan.workers()
    }

    /// This worker's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shared schedule.
    pub fn plan(&self) -> &Arc<SchedulePlan> {
        &self.plan
    }

    /// The designated logger (worker 0) records the globally-replicated
    /// lockset base interns and snapshots the replicated sync state.
    pub fn is_logger(&self) -> bool {
        self.index == 0
    }
}

/// One shard changing hands between workers at a plan boundary: the
/// extracted shadow shard plus the contents of every lockset id its
/// cells reference — ids are worker-local (each worker's intern table
/// evolves independently), so the importer re-interns by contents and
/// rewrites the cells.
#[derive(Debug)]
pub struct ShardHandoff {
    /// The shard index.
    pub(crate) shard: usize,
    /// The shadow pages, moved wholesale.
    pub(crate) payload: ExtractedShard,
    /// Sender-local id → set contents, for every id in the payload.
    pub(crate) locksets: Vec<(LocksetId, Vec<u64>)>,
}

impl ShardHandoff {
    /// Which shard this handoff carries.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// Resolved promotion seeds: for every address the run will promote to a
/// synchronization location, the epoch of its last plain write at the
/// moment of (first) promotion — `None` when it was never written before.
#[derive(Clone, Debug, Default)]
pub struct PromotionSeeds {
    seeds: FxHashMap<u64, Option<Epoch>>,
}

impl PromotionSeeds {
    /// Will this address ever be promoted during the run?
    #[inline]
    pub fn will_promote(&self, addr: u64) -> bool {
        self.seeds.contains_key(&addr)
    }

    /// The seed epoch for `addr`'s promotion, if it had a prior write.
    #[inline]
    pub fn seed(&self, addr: u64) -> Option<Epoch> {
        self.seeds.get(&addr).copied().flatten()
    }

    /// Number of addresses the run promotes.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// True when the run promotes nothing (e.g. any non-spin tool).
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }
}

/// Sequential scalar pre-pass resolving every promotion seed of a replay
/// of `events` under `cfg`.
///
/// Tracks only per-thread *own* clock components and the last plain write
/// epoch of the promotion candidates (spin-condition loads and RMW
/// targets). This mirrors the detector's event cascade exactly — which
/// events tick a thread's own component, and which writes are plain —
/// but performs no vector-clock joins: a join can never raise a thread's
/// own component, because only thread `t` ever ticks component `t` and
/// the VM never reuses thread ids.
pub fn compute_promotion_seeds(cfg: DetectorConfig, events: &[Event]) -> PromotionSeeds {
    let mut seeds: FxHashMap<u64, Option<Epoch>> = FxHashMap::default();
    if !cfg.spin {
        return PromotionSeeds { seeds };
    }

    // Pass A: candidate addresses. Under `spin`, every spin-tagged load
    // and every RMW target is promoted at its first occurrence.
    let mut candidates: FxHashSet<u64> = FxHashSet::default();
    for ev in events {
        match ev {
            Event::Read {
                addr,
                spin: Some(_),
                ..
            }
            | Event::Update { addr, .. } => {
                candidates.insert(*addr);
            }
            _ => {}
        }
    }
    if candidates.is_empty() {
        return PromotionSeeds { seeds };
    }

    // Pass B: scalar replay. `own[t]` mirrors `vcs[t].get(t)`; thread 0
    // starts at 1 (the detector's initial clock sets component 0 to 1).
    let mut own: Vec<u32> = vec![1];
    let mut last_write: FxHashMap<u64, Epoch> = FxHashMap::default();
    let mut promoted: FxHashSet<u64> = FxHashSet::default();

    fn ensure(own: &mut Vec<u32>, t: u32) {
        let t = t as usize;
        if own.len() <= t {
            own.resize(t + 1, 0);
        }
    }
    let mut promote =
        |addr: u64, promoted: &mut FxHashSet<u64>, last_write: &FxHashMap<u64, Epoch>| {
            if promoted.insert(addr) {
                seeds.insert(addr, last_write.get(&addr).copied());
            }
        };

    for ev in events {
        match *ev {
            Event::Spawn { parent, child, .. } => {
                ensure(&mut own, parent);
                ensure(&mut own, child);
                own[child as usize] += 1;
                own[parent as usize] += 1;
            }
            Event::Read {
                addr,
                spin: Some(_),
                ..
            } => promote(addr, &mut promoted, &last_write),
            Event::Read { .. } => {}
            Event::Write {
                tid, addr, atomic, ..
            } => {
                ensure(&mut own, tid);
                if promoted.contains(&addr) {
                    // Counterpart write to a promoted location: release.
                    own[tid as usize] += 1;
                } else if cfg.atomics_sync && atomic.is_some() {
                    if atomic.is_some_and(|o| o.releases()) {
                        own[tid as usize] += 1;
                    }
                } else if candidates.contains(&addr) {
                    last_write.insert(addr, Epoch::new(tid, own[tid as usize]));
                }
            }
            Event::Update { tid, addr, .. } => {
                ensure(&mut own, tid);
                // `spin` is on (checked above): promote, acquire, release.
                promote(addr, &mut promoted, &last_write);
                own[tid as usize] += 1;
            }
            Event::MutexUnlock { tid, .. }
            | Event::CondSignal { tid, .. }
            | Event::CondBroadcast { tid, .. }
            | Event::BarrierEnter { tid, .. }
            | Event::SemPost { tid, .. } => {
                if cfg.lib {
                    ensure(&mut own, tid);
                    own[tid as usize] += 1;
                }
            }
            // Pure joins or no-ops: never change an own component.
            Event::Join { .. }
            | Event::ThreadEnd { .. }
            | Event::Fence { .. }
            | Event::MutexLock { .. }
            | Event::CondWaitReturn { .. }
            | Event::BarrierLeave { .. }
            | Event::SemAcquired { .. }
            | Event::SpinEnter { .. }
            | Event::SpinExit { .. }
            | Event::Output { .. } => {}
        }
    }
    PromotionSeeds { seeds }
}

/// A racy context's dedup key (see [`RaceReport::context`]).
pub(crate) type Ctx = ((Pc, u64), (Pc, u64));

/// A report attempt tagged with its global stream position — `(event,
/// seq)` totally orders attempts across workers because one event's plain
/// accesses all hit a single address, i.e. a single worker.
#[derive(Clone, Debug)]
pub struct TaggedReport {
    /// Index of the originating event in the full stream.
    pub event: u64,
    /// Emission order within that event.
    pub seq: u32,
    /// The report as the sequential detector would have attempted it.
    pub report: RaceReport,
}

/// One replayable operation on the global lockset intern table, with set
/// contents (not worker-local ids, which differ per worker).
#[derive(Clone, Debug)]
pub enum LocksetOp {
    /// `intern_presorted` of a thread's held-lock set (lock events; logged
    /// by worker 0 — they are identical in every worker).
    Intern(Vec<u64>),
    /// Eraser-stage `intersect` of a cell's running write lockset with the
    /// writer's current one (logged by the cell's owner).
    Intersect(Vec<u64>, Vec<u64>),
}

/// A lockset op tagged with its originating event (at most one lockset op
/// per event, so the event index alone orders the log).
#[derive(Clone, Debug)]
pub struct TaggedLocksetOp {
    /// Index of the originating event in the full stream.
    pub event: u64,
    /// The operation.
    pub op: LocksetOp,
}

/// Per-worker replay bookkeeping, attached to a
/// [`RaceDetector`](crate::RaceDetector) by
/// [`RaceDetector::new_worker`](crate::RaceDetector::new_worker).
#[derive(Debug)]
pub struct WorkerState {
    /// Shard ownership (identity + schedule).
    pub spec: ShardSpec,
    /// Shared promotion seeds (empty for non-spin configurations).
    pub seeds: Arc<PromotionSeeds>,
    /// The current phase's shard → worker assignment (kept flat so the
    /// per-access ownership gate is one array index, not a plan lookup).
    pub(crate) cur_assignment: [u8; NUM_SHARDS],
    /// Stream index of the event currently being processed.
    pub(crate) cur_event: u64,
    /// Reports emitted so far by the current event.
    pub(crate) cur_seq: u32,
    /// First-in-worker report attempts, in stream order.
    pub(crate) attempts: Vec<TaggedReport>,
    /// Total attempts per context (the first is in `attempts`; the rest
    /// only matter for the collector's `dropped` accounting).
    pub(crate) attempt_counts: FxHashMap<Ctx, u64>,
    /// Lockset op log (base interns only on the logger worker).
    pub(crate) lockset_ops: Vec<TaggedLocksetOp>,
}

impl WorkerState {
    /// Fresh worker bookkeeping, starting in phase 0.
    pub fn new(spec: ShardSpec, seeds: Arc<PromotionSeeds>) -> WorkerState {
        let cur_assignment = *spec.plan().assignment(0);
        WorkerState {
            spec,
            seeds,
            cur_assignment,
            cur_event: 0,
            cur_seq: 0,
            attempts: Vec::new(),
            attempt_counts: FxHashMap::default(),
            lockset_ops: Vec::new(),
        }
    }

    /// Switch to `phase`'s shard assignment (called after the boundary's
    /// handoffs have been exchanged).
    pub(crate) fn enter_phase(&mut self, phase: usize) {
        self.cur_assignment = *self.spec.plan().assignment(phase);
    }

    /// Does this worker currently own `addr`'s shadow cell?
    #[inline]
    pub(crate) fn owns_addr(&self, addr: u64) -> bool {
        self.cur_assignment[shard_of(addr)] as usize == self.spec.index()
    }

    /// Append a lockset op tagged with the current event.
    pub(crate) fn log_lockset_op(&mut self, op: LocksetOp) {
        self.lockset_ops.push(TaggedLocksetOp {
            event: self.cur_event,
            op,
        });
    }

    /// Begin processing the event at stream index `index`.
    pub(crate) fn begin_event(&mut self, index: u64) {
        self.cur_event = index;
        self.cur_seq = 0;
    }
}

/// Record a report attempt: sequentially straight into the collector; in
/// a worker, into the tagged attempt log. Only a context's first-in-worker
/// attempt carries the full report (the merge needs each context's
/// earliest attempt, and within one worker attempts arrive in stream
/// order); later attempts just bump the context's count, which the merge
/// folds into the collector's `dropped` accounting.
pub(crate) fn emit_report(
    reports: &mut ReportCollector,
    worker: Option<&mut WorkerState>,
    r: RaceReport,
) {
    match worker {
        None => {
            reports.record(r);
        }
        Some(w) => {
            let ctx = r.context();
            let count = w.attempt_counts.entry(ctx).or_insert(0);
            *count += 1;
            if *count == 1 {
                w.attempts.push(TaggedReport {
                    event: w.cur_event,
                    seq: w.cur_seq,
                    report: r,
                });
            }
            w.cur_seq += 1;
        }
    }
}

/// What one worker hands to the merge.
#[derive(Debug)]
pub struct WorkerFragment {
    /// The worker's shard assignment.
    pub spec: ShardSpec,
    /// Tagged report attempts from this worker's shards.
    pub attempts: Vec<TaggedReport>,
    /// Total attempts per context (see [`WorkerState::attempt_counts`]).
    pub(crate) attempt_counts: FxHashMap<Ctx, u64>,
    /// Tagged lockset ops (base interns only from worker 0).
    pub lockset_ops: Vec<TaggedLocksetOp>,
    /// Shadow bytes of this worker's owned shards. Summing over workers
    /// equals the sequential total: each owned shard is structurally
    /// identical to the sequential table's, and unowned shards allocate
    /// nothing.
    pub shadow_bytes: usize,
    /// Replicated global state, identical in every worker; the merge
    /// reads the logger's copy.
    pub thread_vc_bytes: usize,
    /// Library sync-object clock bytes (replicated).
    pub lib_sync_bytes: usize,
    /// Atomic-location clock bytes (replicated).
    pub atomic_bytes: usize,
    /// Promoted-location clock bytes (replicated).
    pub spin_sync_bytes: usize,
    /// Promoted locations (replicated).
    pub promoted_locations: usize,
}

/// The merged detection result — bit-identical to what one sequential
/// replay of the same stream under the same configuration produces.
#[derive(Debug)]
pub struct MergedDetection {
    /// Reports, contexts and cap state, in sequential discovery order.
    pub reports: ReportCollector,
    /// Metrics equal to the sequential detector's.
    pub metrics: DetectorMetrics,
    /// Promoted synchronization locations.
    pub promoted_locations: usize,
}

/// Merge worker fragments into the sequential detection result.
///
/// Report attempts are sorted by stream position and replayed through a
/// real collector (reproducing dedup order, representatives, and the
/// cap); lockset ops are replayed in stream order against a fresh table
/// (reproducing the sequential table's sets, capacities and memo for the
/// metrics); shadow bytes sum across workers; replicated state is read
/// from the logger worker.
pub fn merge_fragments(cap: usize, fragments: Vec<WorkerFragment>) -> MergedDetection {
    try_merge_fragments(cap, fragments).expect("fragment set must include worker 0")
}

/// [`merge_fragments`], returning `None` instead of panicking when the
/// fragment set has no logger (worker 0) fragment — the shape a merge
/// sees when a worker died without producing its fragment.
pub fn try_merge_fragments(cap: usize, fragments: Vec<WorkerFragment>) -> Option<MergedDetection> {
    let logger = fragments.iter().find(|f| f.spec.is_logger())?;
    let (thread_vc_bytes, lib_sync_bytes, atomic_bytes, spin_sync_bytes, promoted_locations) = (
        logger.thread_vc_bytes,
        logger.lib_sync_bytes,
        logger.atomic_bytes,
        logger.spin_sync_bytes,
        logger.promoted_locations,
    );
    let shadow_bytes = fragments.iter().map(|f| f.shadow_bytes).sum();

    let mut attempts: Vec<TaggedReport> = Vec::new();
    let mut ops: Vec<TaggedLocksetOp> = Vec::new();
    let mut counts: Vec<(Ctx, u64)> = Vec::new();
    for f in fragments {
        attempts.extend(f.attempts);
        ops.extend(f.lockset_ops);
        counts.extend(f.attempt_counts);
    }
    // (event, seq) is unique across workers: an event's reports all come
    // from one address, hence one owner.
    attempts.sort_unstable_by_key(|a| (a.event, a.seq));
    let mut reports = ReportCollector::new(cap);
    for a in attempts {
        reports.record(a.report);
    }
    // Repeat attempts of a context the cap kept out: the sequential
    // collector counts every one of them as dropped (an unrecorded
    // context never enters the dedup set). The replay above already
    // counted each worker's *first* attempt; fold in the rest. Contexts
    // that were recorded contribute nothing — only their globally-first
    // attempt did anything, and it was recorded.
    for (ctx, count) in counts {
        if count > 1 && !reports.has_context(&ctx) {
            reports.note_dropped((count - 1) as usize);
        }
    }

    // At most one lockset op per event, so the event index orders the log.
    ops.sort_unstable_by_key(|o| o.event);
    let mut table = LocksetTable::default();
    for op in ops {
        match op.op {
            LocksetOp::Intern(set) => {
                table.intern_presorted(&set);
            }
            LocksetOp::Intersect(prev, cur) => {
                // Both operand sets were already interned at this point of
                // the sequential op order, so these are pure lookups that
                // recover the sequential ids without mutating the table.
                let a = table.intern_presorted(&prev);
                let b = table.intern_presorted(&cur);
                table.intersect(a, b);
            }
        }
    }

    let metrics = DetectorMetrics {
        shadow_bytes,
        thread_vc_bytes,
        lib_sync_bytes,
        atomic_bytes,
        spin_sync_bytes,
        lockset_bytes: table.approx_bytes(),
        report_bytes: reports.approx_bytes(),
    };
    Some(MergedDetection {
        reports,
        metrics,
        promoted_locations,
    })
}

/// Where one event of a parallel replay must go: broadcast to every
/// worker, or only to the owner of one address's shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventRoute {
    /// Synchronization-relevant: every worker processes it so the
    /// replicated state (thread clocks, sync-object clocks, promotions,
    /// held locksets) stays in lock-step.
    Broadcast,
    /// Entire effect confined to this address's shadow cell: only the
    /// owning worker processes it.
    Owner(u64),
}

/// Route one event of a replay of the stream under `cfg`.
///
/// Routing is conservative: any event that *could* mutate globally
/// replicated state is broadcast; [`EventRoute::Owner`] events are
/// exactly those whose entire effect is confined to one address's shadow
/// cell. Writes to an eventually-promoted address ([`PromotionSeeds`]
/// knows the full set up front) are broadcast because they become
/// releases — which tick the writer's clock — once promotion happens;
/// before that, non-owners fall through to the plain-access path and
/// stop at the detector's ownership gate. Workers evaluate this predicate
/// inline while scanning the shared event slice, so the routing work
/// itself parallelizes instead of being a serial partitioning pass.
#[inline]
pub fn event_route(cfg: DetectorConfig, seeds: &PromotionSeeds, ev: &Event) -> EventRoute {
    match ev {
        Event::Read {
            addr, atomic, spin, ..
        } => {
            if (cfg.spin && spin.is_some()) || (cfg.atomics_sync && atomic.is_some()) {
                EventRoute::Broadcast // promotes, or joins an atomic clock
            } else {
                EventRoute::Owner(*addr)
            }
        }
        Event::Write { addr, atomic, .. } => {
            if (cfg.spin && seeds.will_promote(*addr)) || (cfg.atomics_sync && atomic.is_some()) {
                EventRoute::Broadcast // release (ticks the writer's clock)
            } else {
                EventRoute::Owner(*addr)
            }
        }
        Event::Update { addr, .. } => {
            if cfg.spin || cfg.atomics_sync {
                EventRoute::Broadcast // promotes / release-acquires
            } else {
                EventRoute::Owner(*addr) // library-only hybrid: plain r+w
            }
        }
        _ => EventRoute::Broadcast,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MsmMode;
    use crate::shadow::NUM_SHARDS;
    use spinrace_tir::{BlockId, FuncId, SpinLoopId};

    fn pc(n: u32) -> Pc {
        Pc::new(FuncId(0), BlockId(0), n)
    }

    fn spin_read(tid: u32, addr: u64) -> Event {
        Event::Read {
            tid,
            addr,
            value: 0,
            pc: pc(1),
            stack: 0,
            atomic: None,
            spin: Some(SpinLoopId(0)),
        }
    }

    fn write(tid: u32, addr: u64) -> Event {
        Event::Write {
            tid,
            addr,
            value: 1,
            pc: pc(2),
            stack: 0,
            atomic: None,
        }
    }

    #[test]
    fn seeds_capture_the_last_write_epoch() {
        let cfg = DetectorConfig::helgrind_lib_spin(MsmMode::Short);
        let flag = 0x1000u64;
        let events = vec![
            Event::Spawn {
                parent: 0,
                child: 1,
                pc: pc(0),
            },
            write(0, flag), // epoch 2@0: spawn ticked thread 0 from 1 to 2
            spin_read(1, flag),
        ];
        let seeds = compute_promotion_seeds(cfg, &events);
        assert_eq!(seeds.len(), 1);
        assert!(seeds.will_promote(flag));
        assert_eq!(seeds.seed(flag), Some(Epoch::new(0, 2)));
    }

    #[test]
    fn seeds_are_none_without_a_prior_write_and_freeze_at_promotion() {
        let cfg = DetectorConfig::helgrind_lib_spin(MsmMode::Short);
        let flag = 0x1000u64;
        let events = vec![
            Event::Spawn {
                parent: 0,
                child: 1,
                pc: pc(0),
            },
            spin_read(1, flag), // promoted before any write
            write(0, flag),     // now a release, not a plain write
            spin_read(1, flag),
        ];
        let seeds = compute_promotion_seeds(cfg, &events);
        assert_eq!(seeds.seed(flag), None);
    }

    #[test]
    fn non_spin_configs_promote_nothing() {
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short);
        let events = vec![spin_read(0, 0x1000)];
        assert!(compute_promotion_seeds(cfg, &events).is_empty());
    }

    #[test]
    fn lib_release_events_tick_the_scalar_clocks() {
        // A mutex unlock between two writes must move the writer's epoch,
        // and the seed must see the *second* write's epoch.
        let cfg = DetectorConfig::helgrind_lib_spin(MsmMode::Short);
        let flag = 0x1000u64;
        let events = vec![
            write(0, flag), // 1@0
            Event::MutexUnlock {
                tid: 0,
                mutex: 0x9000,
                pc: pc(3),
            }, // tick: thread 0 now at 2
            write(0, flag), // 2@0
            spin_read(0, flag),
        ];
        let seeds = compute_promotion_seeds(cfg, &events);
        assert_eq!(seeds.seed(flag), Some(Epoch::new(0, 2)));
    }

    #[test]
    fn static_plan_partitions_all_shards_modularly() {
        for workers in 1..=NUM_SHARDS {
            let plan = SchedulePlan::static_plan(workers);
            assert_eq!(plan.phases(), 1);
            assert_eq!(plan.handoffs(), 0);
            for s in 0..NUM_SHARDS {
                assert_eq!(plan.assignment(0)[s] as usize, s % workers);
            }
        }
    }

    #[test]
    fn lpt_balances_a_skewed_histogram() {
        // One dominant shard plus a tail: LPT must put the hot shard
        // alone and spread the tail, bounding the makespan at the larger
        // of the hot shard and an even split of the rest.
        let hist: [u64; NUM_SHARDS] = [100, 10, 10, 10, 10, 10, 10, 10];
        for workers in 2..=4 {
            let a = lpt(&hist, workers);
            let makespan = max_load(&hist, &a, workers);
            assert_eq!(makespan, 100, "{workers} workers: {a:?}");
            // Static modular assignment is strictly worse here: worker 0
            // gets shard 0 plus every aligned tail shard.
            let static_a = *SchedulePlan::static_plan(workers).assignment(0);
            assert!(max_load(&hist, &static_a, workers) > makespan);
        }
    }

    #[test]
    fn lpt_is_deterministic_and_total() {
        let hist: [u64; NUM_SHARDS] = [5, 5, 5, 5, 0, 0, 0, 3];
        for workers in 1..=NUM_SHARDS {
            let a = lpt(&hist, workers);
            assert_eq!(a, lpt(&hist, workers), "pure function of the histogram");
            for (s, &w) in a.iter().enumerate() {
                assert!((w as usize) < workers, "shard {s} assigned in range");
            }
        }
    }

    #[test]
    fn balanced_plan_on_a_stationary_stream_has_no_handoffs() {
        // Same skew in every chunk: whole-stream LPT already fits each
        // chunk, so hysteresis keeps the first assignment throughout.
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short);
        let mut events = vec![Event::Spawn {
            parent: 0,
            child: 1,
            pc: pc(0),
        }];
        for round in 0..100u64 {
            // Shard of addr is (addr >> 6) & 7; page stride is 64.
            events.push(write(1, round % 2 * 64)); // shards 0 and 1 forever
        }
        let seeds = compute_promotion_seeds(cfg, &events);
        let plan = SchedulePlan::balanced_chunked(cfg, &seeds, &events, 2, 10);
        assert_eq!(plan.handoffs(), 0, "stationary stream: {plan:?}");
        assert_eq!(plan.occupancy()[0], 50);
        assert_eq!(plan.occupancy()[1], 50);
    }

    #[test]
    fn balanced_plan_repacks_when_the_distribution_shifts() {
        // Phase A: shard 0 dominates the whole stream (256 events), so
        // whole-stream LPT gives worker 0 shard 0 alone and parks shards
        // 2 and 3 together on worker 1. Phase B: only shards 2 and 3 are
        // active, evenly — the carried packing is 2× worse than a fresh
        // one on those chunks, which clears the 1.25× hysteresis and
        // forces a planned handoff.
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short);
        let mut events = Vec::new();
        for _ in 0..256 {
            events.push(write(0, 0)); // shard 0
        }
        for _ in 0..64 {
            events.push(write(0, 2 * 64)); // shard 2
            events.push(write(0, 3 * 64)); // shard 3
        }
        let seeds = compute_promotion_seeds(cfg, &events);
        let plan = SchedulePlan::balanced_chunked(cfg, &seeds, &events, 2, 64);
        let initial = plan.assignment(0);
        assert_eq!(
            initial[2], initial[3],
            "whole-stream LPT parks the tail shards together: {plan:?}"
        );
        assert!(plan.handoffs() > 0, "shifted stream must re-pack: {plan:?}");
        assert!(
            plan.transfers()
                .iter()
                .any(|t| t.shard == 2 || t.shard == 3),
            "a tail shard moves: {plan:?}"
        );
        for t in &plan.transfers() {
            assert!(t.from != t.to);
            assert_eq!(
                plan.assignment(t.boundary)[t.shard] as usize,
                t.from,
                "transfer matches the assignments"
            );
            assert_eq!(plan.assignment(t.boundary + 1)[t.shard] as usize, t.to);
        }
    }

    #[test]
    fn schedule_parses_and_prints() {
        assert_eq!("static".parse::<Schedule>().unwrap(), Schedule::Static);
        assert_eq!("balanced".parse::<Schedule>().unwrap(), Schedule::Balanced);
        assert!("lpt".parse::<Schedule>().is_err());
        assert_eq!(Schedule::default(), Schedule::Balanced);
        assert_eq!(Schedule::Static.to_string(), "static");
    }

    #[test]
    fn shard_occupancy_counts_plain_accesses_only() {
        let events = vec![
            write(0, 0),       // shard 0
            write(0, 64),      // shard 1
            write(0, 64),      // shard 1
            spin_read(0, 128), // spin-tagged read: not a plain access
            Event::MutexUnlock {
                tid: 0,
                mutex: 0x9000,
                pc: pc(3),
            },
        ];
        let hist = shard_occupancy(&events);
        assert_eq!(hist[0], 1);
        assert_eq!(hist[1], 2);
        assert_eq!(
            hist.iter().sum::<u64>(),
            3,
            "sync and spin events don't count"
        );
    }

    #[test]
    fn routing_broadcasts_sync_and_confines_plain_accesses() {
        let cfg = DetectorConfig::helgrind_lib_spin(MsmMode::Short);
        let flag = 0x1000u64; // eventually promoted → writes broadcast
        let data = 0x2000u64;
        let events = vec![
            Event::Spawn {
                parent: 0,
                child: 1,
                pc: pc(0),
            },
            write(0, data),
            write(0, flag),
            spin_read(1, flag),
        ];
        let seeds = compute_promotion_seeds(cfg, &events);
        assert_eq!(event_route(cfg, &seeds, &events[0]), EventRoute::Broadcast);
        assert_eq!(
            event_route(cfg, &seeds, &events[1]),
            EventRoute::Owner(data),
            "plain access confined to its owner"
        );
        assert_eq!(
            event_route(cfg, &seeds, &events[2]),
            EventRoute::Broadcast,
            "write to an eventually-promoted location broadcasts"
        );
        assert_eq!(event_route(cfg, &seeds, &events[3]), EventRoute::Broadcast);

        // Without spin the same flag write is just a plain access…
        let lib = DetectorConfig::helgrind_lib(MsmMode::Short);
        let no_seeds = compute_promotion_seeds(lib, &events);
        assert_eq!(
            event_route(lib, &no_seeds, &events[2]),
            EventRoute::Owner(flag)
        );
        // …and under DRD an atomic access is synchronization.
        let drd = DetectorConfig::drd();
        let atomic_write = Event::Write {
            tid: 0,
            addr: data,
            value: 1,
            pc: pc(9),
            stack: 0,
            atomic: Some(spinrace_tir::MemOrder::Release),
        };
        assert_eq!(
            event_route(drd, &no_seeds, &atomic_write),
            EventRoute::Broadcast
        );
        assert_eq!(
            event_route(lib, &no_seeds, &atomic_write),
            EventRoute::Owner(data),
            "the library-only hybrid treats atomics as plain data"
        );
    }

    #[test]
    fn merge_reproduces_collector_order_and_cap() {
        let mk = |event: u64, pc_n: u32| TaggedReport {
            event,
            seq: 0,
            report: RaceReport {
                addr: 0x1000 + event,
                prior: crate::report::AccessSummary {
                    tid: 0,
                    pc: pc(pc_n),
                    stack: 0,
                    is_write: true,
                },
                current: crate::report::AccessSummary {
                    tid: 1,
                    pc: pc(pc_n + 100),
                    stack: 0,
                    is_write: true,
                },
                kind: crate::report::RaceKind::WriteWrite,
            },
        };
        let frag = |index: usize, attempts: Vec<TaggedReport>| {
            // Every attempt in these fixtures is a distinct context seen
            // exactly once.
            let attempt_counts = attempts
                .iter()
                .map(|a| (a.report.context(), 1u64))
                .collect();
            WorkerFragment {
                spec: ShardSpec::static_spec(2, index),
                attempts,
                attempt_counts,
                lockset_ops: Vec::new(),
                shadow_bytes: 10,
                thread_vc_bytes: 7,
                lib_sync_bytes: 3,
                atomic_bytes: 0,
                spin_sync_bytes: 0,
                promoted_locations: 0,
            }
        };
        // Worker 1 saw an earlier attempt (event 1) than worker 0 (event 2);
        // cap 2 must keep events 1 and 2, dropping event 9's new context.
        let merged = merge_fragments(
            2,
            vec![frag(0, vec![mk(2, 1), mk(9, 5)]), frag(1, vec![mk(1, 3)])],
        );
        assert_eq!(merged.reports.contexts(), 2);
        let got: Vec<u64> = merged.reports.reports().iter().map(|r| r.addr).collect();
        assert_eq!(got, vec![0x1000 + 1, 0x1000 + 2], "stream order wins");
        assert_eq!(merged.reports.dropped(), 1, "event 9's context capped out");
        assert_eq!(merged.metrics.shadow_bytes, 20, "shadow sums over workers");
        assert_eq!(merged.metrics.thread_vc_bytes, 7, "replicated state once");
    }

    #[test]
    fn repeat_attempts_of_capped_contexts_count_as_dropped() {
        let mk = |event: u64, pc_n: u32| TaggedReport {
            event,
            seq: 0,
            report: RaceReport {
                addr: 0x1000,
                prior: crate::report::AccessSummary {
                    tid: 0,
                    pc: pc(pc_n),
                    stack: 0,
                    is_write: true,
                },
                current: crate::report::AccessSummary {
                    tid: 1,
                    pc: pc(pc_n + 100),
                    stack: 0,
                    is_write: true,
                },
                kind: crate::report::RaceKind::WriteWrite,
            },
        };
        // Context A (pc 1) is recorded and re-attempted twice more;
        // context B (pc 5) arrives after the cap and is attempted three
        // times. The sequential collector drops every B attempt (3) and
        // no A attempt.
        let a = mk(0, 1);
        let b = mk(1, 5);
        let frag = WorkerFragment {
            spec: ShardSpec::static_spec(1, 0),
            attempts: vec![a.clone(), b.clone()],
            attempt_counts: vec![(a.report.context(), 3), (b.report.context(), 3)]
                .into_iter()
                .collect(),
            lockset_ops: Vec::new(),
            shadow_bytes: 0,
            thread_vc_bytes: 0,
            lib_sync_bytes: 0,
            atomic_bytes: 0,
            spin_sync_bytes: 0,
            promoted_locations: 0,
        };
        let merged = merge_fragments(1, vec![frag]);
        assert_eq!(merged.reports.contexts(), 1);
        assert_eq!(merged.reports.dropped(), 3);
    }

    #[test]
    fn lockset_op_replay_matches_direct_table_use() {
        // Direct sequential use…
        let mut direct = LocksetTable::default();
        let a = direct.intern_presorted(&[1, 2]);
        let b = direct.intern_presorted(&[2, 3]);
        direct.intersect(a, b);
        // …equals the op-log replay in the same order.
        let ops = vec![
            TaggedLocksetOp {
                event: 0,
                op: LocksetOp::Intern(vec![1, 2]),
            },
            TaggedLocksetOp {
                event: 1,
                op: LocksetOp::Intern(vec![2, 3]),
            },
            TaggedLocksetOp {
                event: 2,
                op: LocksetOp::Intersect(vec![1, 2], vec![2, 3]),
            },
        ];
        let frag = WorkerFragment {
            spec: ShardSpec::static_spec(1, 0),
            attempts: Vec::new(),
            attempt_counts: FxHashMap::default(),
            lockset_ops: ops,
            shadow_bytes: 0,
            thread_vc_bytes: 0,
            lib_sync_bytes: 0,
            atomic_bytes: 0,
            spin_sync_bytes: 0,
            promoted_locations: 0,
        };
        let merged = merge_fragments(1000, vec![frag]);
        assert_eq!(merged.metrics.lockset_bytes, direct.approx_bytes());
    }
}
