//! Race reports, racy-context deduplication, and the report cap.

use fxhash::FxHashSet;
use serde::{Deserialize, Serialize};
use spinrace_tir::Pc;

/// One side of a race.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessSummary {
    /// Thread performing the access.
    pub tid: u32,
    /// Static location.
    pub pc: Pc,
    /// Call-chain hash (Helgrind-style context component).
    pub stack: u64,
    /// Write or read.
    pub is_write: bool,
}

/// Race flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaceKind {
    /// Two writes, unordered by happens-before.
    WriteWrite,
    /// Read then write, unordered.
    ReadWrite,
    /// Write then read, unordered.
    WriteRead,
    /// Lock-discipline violation (hybrid detector's Eraser stage): two
    /// lock-holding writers with no common lock, even if fortuitously
    /// ordered in this interleaving.
    LocksetViolation,
}

/// One reported race.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceReport {
    /// Conflicting address (word-granular).
    pub addr: u64,
    /// Earlier access.
    pub prior: AccessSummary,
    /// Current access (the one that triggered the report).
    pub current: AccessSummary,
    /// Flavor.
    pub kind: RaceKind,
}

impl RaceReport {
    /// The racy context: the deduplication key — both access sites with
    /// their call-chain hashes (Helgrind dedupes errors by stack trace).
    pub fn context(&self) -> ((Pc, u64), (Pc, u64)) {
        (
            (self.prior.pc, self.prior.stack),
            (self.current.pc, self.current.stack),
        )
    }
}

/// Collects reports, deduplicating by racy context with a cap.
///
/// The cap mirrors Helgrind's error cap: once `cap` distinct contexts have
/// been recorded, further *new* contexts are dropped (the saturation
/// visible as "1000" cells in the paper's PARSEC tables, and the mechanism
/// behind the false negative that spin detection removes — a real race
/// drowning past the cap in a flood of false positives).
#[derive(Clone, Debug)]
pub struct ReportCollector {
    reports: Vec<RaceReport>,
    contexts: FxHashSet<((Pc, u64), (Pc, u64))>,
    cap: usize,
    dropped: usize,
}

impl ReportCollector {
    /// Collector with the given context cap.
    pub fn new(cap: usize) -> ReportCollector {
        ReportCollector {
            reports: Vec::new(),
            contexts: FxHashSet::default(),
            cap,
            dropped: 0,
        }
    }

    /// Record a race; returns true if it created a new context.
    pub fn record(&mut self, r: RaceReport) -> bool {
        let ctx = r.context();
        if self.contexts.contains(&ctx) {
            return false;
        }
        if self.contexts.len() >= self.cap {
            self.dropped += 1;
            return false;
        }
        self.contexts.insert(ctx);
        self.reports.push(r);
        true
    }

    /// Distinct racy contexts recorded (capped).
    pub fn contexts(&self) -> usize {
        self.contexts.len()
    }

    /// New contexts that arrived after saturation.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Is this context already recorded? (Sharded-replay merge.)
    pub(crate) fn has_context(&self, ctx: &((Pc, u64), (Pc, u64))) -> bool {
        self.contexts.contains(ctx)
    }

    /// Account for `n` drops observed elsewhere (sharded-replay merge:
    /// repeat attempts of capped-out contexts that workers counted
    /// instead of logging).
    pub(crate) fn note_dropped(&mut self, n: usize) {
        self.dropped += n;
    }

    /// One representative report per context, in discovery order.
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Was any race reported on `addr`?
    pub fn has_race_on(&self, addr: u64) -> bool {
        self.reports.iter().any(|r| r.addr == addr)
    }

    /// Approximate retained bytes (memory metrics).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.reports.capacity() * size_of::<RaceReport>()
            + self.contexts.len() * size_of::<((Pc, u64), (Pc, u64))>()
    }
}

impl Default for ReportCollector {
    fn default() -> Self {
        ReportCollector::new(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::{BlockId, FuncId};

    fn report(i: u32) -> RaceReport {
        let pc = |n| Pc::new(FuncId(0), BlockId(n), 0);
        RaceReport {
            addr: 0x1000,
            prior: AccessSummary {
                tid: 0,
                pc: pc(i),
                stack: 0,
                is_write: true,
            },
            current: AccessSummary {
                tid: 1,
                pc: pc(i + 100),
                stack: 0,
                is_write: true,
            },
            kind: RaceKind::WriteWrite,
        }
    }

    #[test]
    fn dedupe_by_context() {
        let mut c = ReportCollector::new(10);
        assert!(c.record(report(1)));
        assert!(!c.record(report(1)));
        assert!(c.record(report(2)));
        assert_eq!(c.contexts(), 2);
        assert_eq!(c.reports().len(), 2);
    }

    #[test]
    fn cap_saturates() {
        let mut c = ReportCollector::new(3);
        for i in 0..10 {
            c.record(report(i));
        }
        assert_eq!(c.contexts(), 3);
        assert_eq!(c.dropped(), 7);
        // duplicates of existing contexts are not counted as dropped
        c.record(report(0));
        assert_eq!(c.dropped(), 7);
    }

    #[test]
    fn has_race_on_addr() {
        let mut c = ReportCollector::new(10);
        c.record(report(1));
        assert!(c.has_race_on(0x1000));
        assert!(!c.has_race_on(0x2000));
    }
}
