//! Interned locksets, Eraser-style.
//!
//! Locksets are small sorted vectors of lock addresses, interned so shadow
//! cells store a 4-byte id and intersections are memoized — the same
//! design Eraser used to keep shadow memory small, and a visible chunk of
//! the detector's memory footprint in the paper's memory figure.

use fxhash::FxHashMap;

/// Interned lockset id. Id 0 is always the empty lockset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocksetId(pub u32);

impl LocksetId {
    /// The empty lockset.
    pub const EMPTY: LocksetId = LocksetId(0);
}

/// Intern table for locksets.
#[derive(Clone, Debug)]
pub struct LocksetTable {
    sets: Vec<Vec<u64>>,
    index: FxHashMap<Vec<u64>, LocksetId>,
    intersect_memo: FxHashMap<(LocksetId, LocksetId), LocksetId>,
}

impl Default for LocksetTable {
    fn default() -> Self {
        let mut t = LocksetTable {
            sets: Vec::new(),
            index: FxHashMap::default(),
            intersect_memo: FxHashMap::default(),
        };
        let id = t.intern_sorted(Vec::new());
        debug_assert_eq!(id, LocksetId::EMPTY);
        t
    }
}

impl LocksetTable {
    /// Intern a lockset given as an arbitrary-order slice.
    pub fn intern(&mut self, locks: &[u64]) -> LocksetId {
        let mut v = locks.to_vec();
        v.sort_unstable();
        v.dedup();
        self.intern_sorted(v)
    }

    /// Intern a lockset the caller guarantees is sorted and deduplicated
    /// (the detector's per-thread held-lock vectors are maintained that
    /// way). Allocation-free on the hit path: `Vec<u64>: Borrow<[u64]>`
    /// lets the index be probed with the bare slice.
    pub fn intern_presorted(&mut self, locks: &[u64]) -> LocksetId {
        debug_assert!(locks.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
        if let Some(&id) = self.index.get(locks) {
            return id;
        }
        self.intern_sorted(locks.to_vec())
    }

    fn intern_sorted(&mut self, v: Vec<u64>) -> LocksetId {
        if let Some(&id) = self.index.get(&v) {
            return id;
        }
        let id = LocksetId(self.sets.len() as u32);
        self.index.insert(v.clone(), id);
        self.sets.push(v);
        id
    }

    /// The locks of an interned set.
    pub fn get(&self, id: LocksetId) -> &[u64] {
        &self.sets[id.0 as usize]
    }

    /// Is the interned set `id` empty?
    pub fn set_is_empty(&self, id: LocksetId) -> bool {
        self.sets[id.0 as usize].is_empty()
    }

    /// Is this (sorted, deduplicated) set already interned? (Sharded
    /// replay uses this to log only table-mutating base interns.)
    pub(crate) fn contains_presorted(&self, locks: &[u64]) -> bool {
        self.index.contains_key(locks)
    }

    /// Has this pair already been intersected (memo present)? (Sharded
    /// replay uses this to log each intersection once per worker.)
    pub(crate) fn has_memo(&self, a: LocksetId, b: LocksetId) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.intersect_memo.contains_key(&key)
    }

    /// Memoized intersection.
    pub fn intersect(&mut self, a: LocksetId, b: LocksetId) -> LocksetId {
        if a == b {
            return a;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&id) = self.intersect_memo.get(&key) {
            return id;
        }
        let (sa, sb) = (&self.sets[a.0 as usize], &self.sets[b.0 as usize]);
        let mut out = Vec::with_capacity(sa.len().min(sb.len()));
        let (mut i, mut j) = (0, 0);
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(sa[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        let id = self.intern_sorted(out);
        self.intersect_memo.insert(key, id);
        id
    }

    /// Number of distinct interned sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Is the table empty? (Never true after `default()`, which pre-interns
    /// the empty lockset as id 0.)
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Approximate retained bytes (memory metrics).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sets
            .iter()
            .map(|s| s.capacity() * size_of::<u64>() + size_of::<Vec<u64>>())
            .sum::<usize>()
            + self.intersect_memo.len() * size_of::<((LocksetId, LocksetId), LocksetId)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_id_zero() {
        let mut t = LocksetTable::default();
        assert_eq!(t.intern(&[]), LocksetId::EMPTY);
        assert!(t.set_is_empty(LocksetId::EMPTY));
        assert!(!t.is_empty(), "empty lockset is pre-interned");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn interning_dedupes_and_sorts() {
        let mut t = LocksetTable::default();
        let a = t.intern(&[3, 1, 2]);
        let b = t.intern(&[1, 2, 3, 3]);
        assert_eq!(a, b);
        assert_eq!(t.get(a), &[1, 2, 3]);
    }

    #[test]
    fn intersection_behaviour() {
        let mut t = LocksetTable::default();
        let ab = t.intern(&[10, 20]);
        let bc = t.intern(&[20, 30]);
        let b = t.intersect(ab, bc);
        assert_eq!(t.get(b), &[20]);
        let none = t.intern(&[40]);
        assert_eq!(t.intersect(ab, none), LocksetId::EMPTY);
        // memoized and symmetric
        assert_eq!(t.intersect(bc, ab), b);
    }

    proptest::proptest! {
        #[test]
        fn intersection_is_subset_of_operands(
            xs in proptest::collection::vec(0u64..20, 0..8),
            ys in proptest::collection::vec(0u64..20, 0..8),
        ) {
            let mut t = LocksetTable::default();
            let a = t.intern(&xs);
            let b = t.intern(&ys);
            let i = t.intersect(a, b);
            let ia: Vec<u64> = t.get(i).to_vec();
            for l in &ia {
                proptest::prop_assert!(t.get(a).contains(l));
                proptest::prop_assert!(t.get(b).contains(l));
            }
            // and contains every common element
            for l in t.get(a).to_vec() {
                if t.get(b).contains(&l) {
                    proptest::prop_assert!(ia.contains(&l));
                }
            }
        }
    }
}
