//! Detector configurations — the four tool columns of the paper's tables.

use serde::{Deserialize, Serialize};

/// Memory-state-machine sensitivity (Helgrind+, IPDPS'09).
///
/// * `Short` — for short-running programs (unit tests): report the first
///   unordered access pair on a location. More sensitive, more false
///   positives.
/// * `Long` — for long-running programs (integration tests): a location
///   must exhibit unordered behaviour twice before reports are emitted
///   ("might miss a race on the first iteration, but not on the second").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsmMode {
    /// Report on first suspicion.
    Short,
    /// Require a second confirmation per location.
    Long,
}

/// Which detector algorithm runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Hybrid lockset + happens-before (Helgrind+).
    HelgrindPlus {
        /// State-machine sensitivity.
        msm: MsmMode,
    },
    /// Pure happens-before with machine-atomic edges (DRD).
    Drd,
    /// Sync-preserving predictive detection (Mathur, Pavlogiannis &
    /// Viswanathan): a weakened happens-before whose mutex release→acquire
    /// edges are kept only between critical sections that *conflict* on
    /// the accessed variable, so races that merely require reordering two
    /// independent critical sections are predicted from one recorded
    /// trace. Single-pass and inherently sequential.
    SyncPreserving,
}

/// Full configuration of a detector run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Algorithm.
    pub kind: DetectorKind,
    /// Understand library synchronization events (mutex/CV/barrier/sem).
    /// Spawn/join edges are always understood — thread creation is program
    /// structure, not a library call.
    pub lib: bool,
    /// The paper's contribution: derive happens-before from instrumented
    /// spinning read loops (requires a spin-instrumented module), treat
    /// promoted condition locations as synchronization variables, and
    /// treat atomic read-modify-writes as synchronization operations.
    pub spin: bool,
    /// Derive happens-before edges from atomic memory orderings
    /// (release/acquire/CAS/RMW) and exempt atomics from race checks —
    /// DRD's machine-level atomics handling.
    pub atomics_sync: bool,
    /// Racy-context cap (Helgrind's error cap; the paper's "1000" cells).
    pub context_cap: usize,
}

impl DetectorConfig {
    /// `Helgrind+ lib` — hybrid with library knowledge, no spin detection.
    pub fn helgrind_lib(msm: MsmMode) -> Self {
        DetectorConfig {
            kind: DetectorKind::HelgrindPlus { msm },
            lib: true,
            spin: false,
            atomics_sync: false,
            context_cap: 1000,
        }
    }

    /// `Helgrind+ lib+spin` — library knowledge plus spin detection.
    pub fn helgrind_lib_spin(msm: MsmMode) -> Self {
        DetectorConfig {
            spin: true,
            ..Self::helgrind_lib(msm)
        }
    }

    /// `Helgrind+ nolib+spin` — the universal detector: no library
    /// knowledge, spin detection only (run it on a lowered module).
    pub fn helgrind_nolib_spin(msm: MsmMode) -> Self {
        DetectorConfig {
            lib: false,
            spin: true,
            ..Self::helgrind_lib(msm)
        }
    }

    /// `DRD` — pure happens-before baseline.
    pub fn drd() -> Self {
        DetectorConfig {
            kind: DetectorKind::Drd,
            lib: true,
            spin: false,
            atomics_sync: true,
            context_cap: 1000,
        }
    }

    /// `SyncPreserving` — predictive detection over a recorded trace:
    /// hard happens-before from spawn/join, condvars, barriers,
    /// semaphores and machine atomics, but mutex edges only between
    /// conflicting critical sections (see [`DetectorKind::SyncPreserving`]).
    pub fn sync_preserving() -> Self {
        DetectorConfig {
            kind: DetectorKind::SyncPreserving,
            lib: true,
            spin: false,
            atomics_sync: true,
            context_cap: 1000,
        }
    }

    /// Override the racy-context cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.context_cap = cap;
        self
    }

    /// Is the hybrid lockset stage active?
    pub fn has_lockset(&self) -> bool {
        matches!(self.kind, DetectorKind::HelgrindPlus { .. })
    }

    /// Is this a predictive (reordering-aware) detector? Predictive
    /// detection is a single sequential pass: the sharded parallel
    /// engine refuses such configurations instead of silently degrading.
    pub fn is_predictive(&self) -> bool {
        matches!(self.kind, DetectorKind::SyncPreserving)
    }

    /// The long-MSM gating, if any.
    pub fn msm(&self) -> Option<MsmMode> {
        match self.kind {
            DetectorKind::HelgrindPlus { msm } => Some(msm),
            DetectorKind::Drd | DetectorKind::SyncPreserving => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_columns() {
        let lib = DetectorConfig::helgrind_lib(MsmMode::Short);
        assert!(lib.lib && !lib.spin && !lib.atomics_sync && lib.has_lockset());
        let spin = DetectorConfig::helgrind_lib_spin(MsmMode::Short);
        assert!(spin.lib && spin.spin);
        let nolib = DetectorConfig::helgrind_nolib_spin(MsmMode::Long);
        assert!(!nolib.lib && nolib.spin);
        let drd = DetectorConfig::drd();
        assert!(drd.atomics_sync && !drd.has_lockset() && !drd.spin);
        assert_eq!(drd.context_cap, 1000);
        let sp = DetectorConfig::sync_preserving();
        assert!(sp.is_predictive() && !sp.has_lockset() && sp.msm().is_none());
        assert!(!lib.is_predictive() && !drd.is_predictive());
    }

    #[test]
    fn cap_override() {
        let c = DetectorConfig::drd().with_cap(25);
        assert_eq!(c.context_cap, 25);
    }
}
