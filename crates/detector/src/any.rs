//! One [`EventSink`] surface over both detector families.
//!
//! The witnessed-interleaving detectors ([`RaceDetector`]: Helgrind+
//! hybrids and DRD) and the predictive pass
//! ([`SyncPreservingDetector`]) expose the same result shape but are
//! different state machines. [`AnyDetector`] dispatches on
//! [`DetectorConfig::kind`] so replay engines can instantiate whatever
//! the request's tool asks for without caring which family it is —
//! only the sharded parallel engine needs to distinguish (it refuses
//! predictive configurations, which are inherently sequential).

use crate::config::DetectorConfig;
use crate::detector::RaceDetector;
use crate::metrics::DetectorMetrics;
use crate::predict::SyncPreservingDetector;
use crate::report::ReportCollector;
use crate::sharded::MergedDetection;
use spinrace_vm::{Event, EventSink};

/// A detector of either family, chosen by [`DetectorConfig::kind`].
pub enum AnyDetector {
    /// Witnessed-interleaving detection (Helgrind+ hybrid or DRD).
    Hb(RaceDetector),
    /// Sync-preserving predictive detection.
    Predict(SyncPreservingDetector),
}

impl AnyDetector {
    /// Instantiate the family the configuration names.
    pub fn new(cfg: DetectorConfig) -> AnyDetector {
        if cfg.is_predictive() {
            AnyDetector::Predict(SyncPreservingDetector::new(cfg))
        } else {
            AnyDetector::Hb(RaceDetector::new(cfg))
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        match self {
            AnyDetector::Hb(d) => d.config(),
            AnyDetector::Predict(d) => d.config(),
        }
    }

    /// Collected reports.
    pub fn reports(&self) -> &ReportCollector {
        match self {
            AnyDetector::Hb(d) => d.reports(),
            AnyDetector::Predict(d) => d.reports(),
        }
    }

    /// Number of distinct racy contexts.
    pub fn racy_contexts(&self) -> usize {
        match self {
            AnyDetector::Hb(d) => d.racy_contexts(),
            AnyDetector::Predict(d) => d.racy_contexts(),
        }
    }

    /// Events processed.
    pub fn events_seen(&self) -> u64 {
        match self {
            AnyDetector::Hb(d) => d.events_seen(),
            AnyDetector::Predict(d) => d.events_seen(),
        }
    }

    /// Spin locations promoted to synchronization variables (always 0
    /// for the predictive pass).
    pub fn promoted_locations(&self) -> usize {
        match self {
            AnyDetector::Hb(d) => d.promoted_locations(),
            AnyDetector::Predict(d) => d.promoted_locations(),
        }
    }

    /// Resident shadow-state bytes (budget polls).
    pub fn shadow_resident_bytes(&self) -> usize {
        match self {
            AnyDetector::Hb(d) => d.shadow_resident_bytes(),
            AnyDetector::Predict(d) => d.shadow_resident_bytes(),
        }
    }

    /// Measure retained state.
    pub fn metrics(&self) -> DetectorMetrics {
        match self {
            AnyDetector::Hb(d) => d.metrics(),
            AnyDetector::Predict(d) => d.metrics(),
        }
    }

    /// Seal into the merged-detection shape.
    pub fn into_detection(self) -> MergedDetection {
        match self {
            AnyDetector::Hb(d) => d.into_detection(),
            AnyDetector::Predict(d) => d.into_detection(),
        }
    }
}

impl EventSink for AnyDetector {
    fn on_event(&mut self, ev: &Event) {
        match self {
            AnyDetector::Hb(d) => d.on_event(ev),
            AnyDetector::Predict(d) => d.on_event(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MsmMode;
    use spinrace_tir::{BlockId, FuncId, Pc};

    fn feed(d: &mut AnyDetector) {
        let pc = |n| Pc::new(FuncId(0), BlockId(0), n);
        d.on_event(&Event::Spawn {
            parent: 0,
            child: 1,
            pc: pc(0),
        });
        d.on_event(&Event::Write {
            tid: 0,
            addr: 0x1000,
            value: 1,
            pc: pc(1),
            stack: 0,
            atomic: None,
        });
        d.on_event(&Event::Write {
            tid: 1,
            addr: 0x1000,
            value: 2,
            pc: pc(2),
            stack: 0,
            atomic: None,
        });
    }

    #[test]
    fn dispatches_by_kind() {
        let mut hb = AnyDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        assert!(matches!(hb, AnyDetector::Hb(_)));
        let mut sp = AnyDetector::new(DetectorConfig::sync_preserving());
        assert!(matches!(sp, AnyDetector::Predict(_)));
        feed(&mut hb);
        feed(&mut sp);
        assert_eq!(hb.events_seen(), 3);
        assert_eq!(sp.events_seen(), 3);
        // Unordered write pair: both families report it.
        assert_eq!(hb.racy_contexts(), 1);
        assert_eq!(sp.racy_contexts(), 1);
        assert_eq!(sp.promoted_locations(), 0);
        let det = sp.into_detection();
        assert_eq!(det.reports.contexts(), 1);
    }
}
