//! Shadow memory: per-address access history.
//!
//! Two representation choices keep the per-access hot path allocation-free
//! and cache-friendly:
//!
//! * **Adaptive read state** ([`ReadState`]) — FastTrack's insight that
//!   most locations are only ever read by one thread at a time (or by
//!   threads that are ordered). Such locations keep a single inline
//!   [`AccessRecord`]; only a *genuinely concurrent* second reader promotes
//!   the cell to a heap-allocated read vector.
//! * **Paged, sharded table** ([`ShadowTable`]) — instead of one SipHash
//!   `HashMap<addr, cell>` lookup per access, addresses map to 64-cell
//!   pages; pages live in per-shard arenas indexed by a flat open-addressed
//!   probe table keyed on the page number, fronted by a one-entry hot-page
//!   cache (spatial locality makes consecutive accesses hit the same page).
//!   Sharding by low page bits keeps probe tables small and is the seam a
//!   future parallel-replay PR will split work along.

use crate::lockset::LocksetId;
use spinrace_tir::Pc;

/// One recorded access: a FastTrack-style epoch plus its static site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// Accessing thread.
    pub tid: u32,
    /// That thread's clock component at access time.
    pub clock: u32,
    /// Static location.
    pub pc: Pc,
    /// Call-chain hash (Helgrind-style context).
    pub stack: u64,
}

/// Reads since the last write that are still concurrent-relevant.
///
/// `Exclusive` is the epoch fast path: one inline record, overwritten in
/// place while successive readers are ordered. The first pair of genuinely
/// concurrent reads promotes to `Shared`, which behaves exactly like the
/// reference detector's read vector (covered entries pruned lazily).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum ReadState {
    /// No reads since the last write.
    #[default]
    None,
    /// All reads so far were ordered: only the latest matters.
    Exclusive(AccessRecord),
    /// Concurrent readers: the full vector (in arrival order).
    Shared(Vec<AccessRecord>),
}

impl ReadState {
    /// The live records, oldest first (the reference detector's `reads`
    /// vector, whatever the representation).
    #[inline]
    pub fn as_slice(&self) -> &[AccessRecord] {
        match self {
            ReadState::None => &[],
            ReadState::Exclusive(r) => std::slice::from_ref(r),
            ReadState::Shared(v) => v,
        }
    }

    /// Drop all records. A promoted cell keeps its vector's capacity (the
    /// location proved it attracts concurrent readers once already).
    #[inline]
    pub fn clear(&mut self) {
        match self {
            ReadState::None => {}
            ReadState::Exclusive(_) => *self = ReadState::None,
            ReadState::Shared(v) => v.clear(),
        }
    }

    /// Is the state promoted to a read vector?
    pub fn is_shared(&self) -> bool {
        matches!(self, ReadState::Shared(_))
    }

    /// Heap bytes retained beyond the inline enum (memory metrics).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        match self {
            ReadState::Shared(v) => v.capacity() * std::mem::size_of::<AccessRecord>(),
            _ => 0,
        }
    }
}

/// The shadow cell of one memory word.
#[derive(Clone, Debug, Default)]
pub struct ShadowCell {
    /// Most recent write.
    pub last_write: Option<AccessRecord>,
    /// Reads since the last write (adaptive representation).
    pub reads: ReadState,
    /// Eraser stage: intersection of locksets over lock-holding writes,
    /// with the last such writer, site, and stack context.
    pub write_lockset: Option<(LocksetId, u32, Pc, u64)>,
    /// Long-MSM suspicion counter (see `MsmMode::Long`).
    pub suspicions: u8,
}

impl ShadowCell {
    /// Approximate retained bytes (memory metrics): inline size plus any
    /// promoted read vector.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<ShadowCell>() + self.reads.heap_bytes()
    }

    /// Has this cell recorded anything at all?
    pub fn is_untouched(&self) -> bool {
        self.last_write.is_none()
            && matches!(self.reads, ReadState::None)
            && self.write_lockset.is_none()
            && self.suspicions == 0
    }
}

/// Cells per page (one 64-word span of the VM's word-granular address
/// space — globals and heap allocations are dense, so pages fill up).
pub const PAGE_CELLS: usize = 64;
const PAGE_BITS: u32 = PAGE_CELLS.trailing_zeros();

/// Number of shards (low page-number bits pick the shard). This is the
/// partition seam parallel replay splits work along: a worker that owns a
/// subset of shards builds a table whose owned shards are structurally
/// identical to the sequential table's (same pages, same insertion order,
/// same probe capacities), while unowned shards stay unallocated.
pub const NUM_SHARDS: usize = 8;
const SHARD_MASK: u64 = (NUM_SHARDS as u64) - 1;

/// The shard an address's shadow cell lives in.
#[inline]
pub fn shard_of(addr: u64) -> usize {
    ((addr >> PAGE_BITS) & SHARD_MASK) as usize
}

/// Initial probe-table capacity per shard (slots; power of two).
const INITIAL_SLOTS: usize = 16;

/// One shadow page: the cells of 64 consecutive addresses.
#[derive(Clone, Debug)]
pub struct Page {
    /// The cells, indexed by `addr & (PAGE_CELLS - 1)`.
    pub cells: Box<[ShadowCell]>,
}

impl Page {
    fn new() -> Page {
        Page {
            cells: (0..PAGE_CELLS).map(|_| ShadowCell::default()).collect(),
        }
    }

    /// Retained bytes of this page (slab plus promoted read vectors).
    pub fn approx_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<ShadowCell>()
            + self
                .cells
                .iter()
                .map(|c| c.reads.heap_bytes())
                .sum::<usize>()
    }
}

/// One shard: a flat open-addressed index (page number → arena slot) plus
/// the page arena itself.
#[derive(Clone, Debug, Default)]
struct Shard {
    /// Probe keys: `page_number + 1`, 0 marks an empty slot. Power-of-two
    /// length, linear probing, grown at 75% load.
    keys: Vec<u64>,
    /// Parallel to `keys`: arena index of the page.
    slots: Vec<u32>,
    /// Page arena (never shrinks; insertion order).
    pages: Vec<Page>,
}

/// Fibonacci-style multiplicative mix spreading sequential page numbers
/// across the probe table.
#[inline]
fn mix(page: u64) -> usize {
    (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
}

impl Shard {
    /// Slot of `page` in the probe table: its current position, or the
    /// empty position where it would be inserted.
    #[inline]
    fn probe(&self, page: u64) -> usize {
        let mask = self.keys.len() - 1;
        let key = page + 1;
        let mut i = mix(page) & mask;
        loop {
            let k = self.keys[i];
            if k == 0 || k == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn find(&self, page: u64) -> Option<u32> {
        if self.keys.is_empty() {
            return None;
        }
        let i = self.probe(page);
        (self.keys[i] != 0).then(|| self.slots[i])
    }

    fn find_or_insert(&mut self, page: u64) -> u32 {
        if self.keys.is_empty() {
            self.keys = vec![0; INITIAL_SLOTS];
            self.slots = vec![0; INITIAL_SLOTS];
        } else if (self.pages.len() + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let i = self.probe(page);
        if self.keys[i] != 0 {
            return self.slots[i];
        }
        let slot = self.pages.len() as u32;
        self.pages.push(Page::new());
        self.keys[i] = page + 1;
        self.slots[i] = slot;
        slot
    }

    fn grow(&mut self) {
        let new_len = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_len]);
        let old_slots = std::mem::replace(&mut self.slots, vec![0; new_len]);
        for (k, s) in old_keys.into_iter().zip(old_slots) {
            if k != 0 {
                let i = self.probe(k - 1);
                self.keys[i] = k;
                self.slots[i] = s;
            }
        }
    }
}

/// The flat, sharded shadow table: address → page of cells.
#[derive(Clone, Debug)]
pub struct ShadowTable {
    shards: Vec<Shard>,
    /// Hot-page cache: page number of the most recently used page
    /// (`u64::MAX` = none) and its (shard, arena slot).
    cache_page: u64,
    cache_shard: u32,
    cache_slot: u32,
}

impl Default for ShadowTable {
    fn default() -> Self {
        ShadowTable::new()
    }
}

impl ShadowTable {
    /// Empty table; nothing is allocated until the first access.
    pub fn new() -> ShadowTable {
        ShadowTable {
            shards: (0..NUM_SHARDS).map(|_| Shard::default()).collect(),
            cache_page: u64::MAX,
            cache_shard: 0,
            cache_slot: 0,
        }
    }

    /// The cell of `addr`, creating its page on demand. The common case —
    /// another access to the most recently used page — is two compares and
    /// an index.
    #[inline]
    pub fn cell(&mut self, addr: u64) -> &mut ShadowCell {
        let page = addr >> PAGE_BITS;
        let off = (addr as usize) & (PAGE_CELLS - 1);
        if page == self.cache_page {
            return &mut self.shards[self.cache_shard as usize].pages[self.cache_slot as usize]
                .cells[off];
        }
        self.cell_cold(page, off)
    }

    #[cold]
    fn cell_cold(&mut self, page: u64, off: usize) -> &mut ShadowCell {
        let si = (page & SHARD_MASK) as usize;
        let slot = self.shards[si].find_or_insert(page);
        self.cache_page = page;
        self.cache_shard = si as u32;
        self.cache_slot = slot;
        &mut self.shards[si].pages[slot as usize].cells[off]
    }

    /// The cell of `addr` if its page exists (no creation).
    #[inline]
    pub fn get(&self, addr: u64) -> Option<&ShadowCell> {
        let page = addr >> PAGE_BITS;
        let off = (addr as usize) & (PAGE_CELLS - 1);
        if page == self.cache_page {
            return Some(
                &self.shards[self.cache_shard as usize].pages[self.cache_slot as usize].cells[off],
            );
        }
        let si = (page & SHARD_MASK) as usize;
        let slot = self.shards[si].find(page)?;
        Some(&self.shards[si].pages[slot as usize].cells[off])
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.shards.iter().map(|s| s.pages.len()).sum()
    }

    /// Remove shard `s` wholesale for an ownership handoff, leaving an
    /// empty (zero-capacity) shard behind. Moving the whole shard —
    /// probe table, arena, pages — preserves every capacity, so the sum
    /// of shadow bytes across workers stays exactly what a sequential
    /// table would report.
    pub fn extract_shard(&mut self, s: usize) -> ExtractedShard {
        // The hot-page cache may point into the departing shard.
        self.cache_page = u64::MAX;
        ExtractedShard(std::mem::take(&mut self.shards[s]))
    }

    /// Install a handed-off shard. The receiver must never have touched
    /// shard `s` (it was not the owner), so the slot being replaced is
    /// empty.
    pub fn implant_shard(&mut self, s: usize, shard: ExtractedShard) {
        debug_assert!(
            self.shards[s].pages.is_empty(),
            "implanting over a non-empty shard"
        );
        self.cache_page = u64::MAX;
        self.shards[s] = shard.0;
    }

    /// Retained bytes: probe tables, arena headers, page slabs, and
    /// promoted read vectors — the honest cost of the paged layout
    /// (untouched cells inside an allocated page are real memory too).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.shards
            .iter()
            .map(|s| {
                s.keys.capacity() * size_of::<u64>()
                    + s.slots.capacity() * size_of::<u32>()
                    + s.pages.capacity() * size_of::<Page>()
                    + s.pages.iter().map(|p| p.approx_bytes()).sum::<usize>()
            })
            .sum()
    }

    /// Cheap lower bound on retained bytes: probe tables and page slabs
    /// only, skipping the per-page walk over promoted read vectors that
    /// [`approx_bytes`](ShadowTable::approx_bytes) pays for. O(shards),
    /// suitable for polling on the replay hot path (budget checks).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.shards
            .iter()
            .map(|s| {
                s.keys.capacity() * size_of::<u64>()
                    + s.slots.capacity() * size_of::<u32>()
                    + s.pages.capacity() * size_of::<Page>()
            })
            .sum()
    }
}

/// A shard lifted out of one [`ShadowTable`] for an ownership handoff
/// (see `sharded`): an opaque bundle of the shard's probe table and page
/// arena, with mutable cell access so the importer can rewrite
/// worker-local [`LocksetId`]s before implanting.
#[derive(Debug)]
pub struct ExtractedShard(Shard);

impl ExtractedShard {
    /// Every cell of the extracted shard, mutably (arena order).
    pub fn cells_mut(&mut self) -> impl Iterator<Item = &mut ShadowCell> {
        self.0.pages.iter_mut().flat_map(|p| p.cells.iter_mut())
    }

    /// Every cell of the extracted shard (arena order).
    pub fn cells(&self) -> impl Iterator<Item = &ShadowCell> {
        self.0.pages.iter().flat_map(|p| p.cells.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::{BlockId, FuncId};

    fn rec(tid: u32, clock: u32) -> AccessRecord {
        AccessRecord {
            tid,
            clock,
            pc: Pc::new(FuncId(0), BlockId(0), 0),
            stack: 0,
        }
    }

    #[test]
    fn default_cell_is_empty() {
        let c = ShadowCell::default();
        assert!(c.last_write.is_none());
        assert!(c.reads.as_slice().is_empty());
        assert_eq!(c.suspicions, 0);
        assert!(c.is_untouched());
    }

    #[test]
    fn bytes_grow_on_promotion_only() {
        let mut c = ShadowCell::default();
        let inline = c.approx_bytes();
        c.reads = ReadState::Exclusive(rec(0, 1));
        assert_eq!(c.approx_bytes(), inline, "exclusive read is inline");
        c.reads = ReadState::Shared(vec![rec(0, 1), rec(1, 1)]);
        assert!(c.approx_bytes() > inline, "promotion costs heap");
    }

    #[test]
    fn read_state_clear_keeps_shared_capacity() {
        let mut r = ReadState::Shared(vec![rec(0, 1), rec(1, 1)]);
        r.clear();
        assert!(r.as_slice().is_empty());
        assert!(r.is_shared(), "promoted cells stay promoted");
        let mut e = ReadState::Exclusive(rec(0, 1));
        e.clear();
        assert_eq!(e, ReadState::None);
    }

    #[test]
    fn table_round_trips_cells() {
        let mut t = ShadowTable::new();
        assert!(t.get(0x1000).is_none());
        t.cell(0x1000).suspicions = 7;
        assert_eq!(t.get(0x1000).unwrap().suspicions, 7);
        // same page, different cell
        t.cell(0x1001).suspicions = 9;
        assert_eq!(t.get(0x1000).unwrap().suspicions, 7);
        assert_eq!(t.get(0x1001).unwrap().suspicions, 9);
        assert_eq!(t.page_count(), 1);
        // different page
        t.cell(0x2000).suspicions = 3;
        assert_eq!(t.page_count(), 2);
        assert_eq!(t.get(0x2000).unwrap().suspicions, 3);
        assert!(t.get(0x3000).is_none(), "get never creates");
    }

    #[test]
    fn table_survives_many_pages_and_growth() {
        let mut t = ShadowTable::new();
        // 1000 pages spread over all shards force several grow() rounds.
        for i in 0..1000u64 {
            let addr = i * PAGE_CELLS as u64;
            t.cell(addr).suspicions = (i % 250) as u8;
        }
        assert_eq!(t.page_count(), 1000);
        for i in 0..1000u64 {
            let addr = i * PAGE_CELLS as u64;
            assert_eq!(
                t.get(addr).unwrap().suspicions,
                (i % 250) as u8,
                "page {i} lost"
            );
        }
        assert!(t.approx_bytes() > 1000 * PAGE_CELLS * std::mem::size_of::<ShadowCell>());
    }

    #[test]
    fn extract_implant_round_trips_and_keeps_bytes() {
        let mut a = ShadowTable::new();
        // Shard of addr = (addr >> 6) & 7: 0x1000 → page 0x40 → shard 0;
        // 0x40 → page 1 → shard 1.
        a.cell(0x1000).suspicions = 5;
        a.cell(0x40).suspicions = 9;
        let total = a.approx_bytes();
        let moved = a.extract_shard(0);
        assert!(a.get(0x1000).is_none(), "extracted shard is gone");
        assert_eq!(a.get(0x40).unwrap().suspicions, 9, "other shards stay");
        let mut b = ShadowTable::new();
        b.implant_shard(0, moved);
        assert_eq!(b.get(0x1000).unwrap().suspicions, 5);
        assert_eq!(
            a.approx_bytes() + b.approx_bytes(),
            total,
            "moving a whole shard conserves the byte accounting"
        );
    }

    #[test]
    fn adversarial_page_numbers_collide_safely() {
        // Same low bits (same shard), same mixed prefix patterns.
        let mut t = ShadowTable::new();
        let pages = [0u64, 8, 16, 1 << 20, (1 << 20) + 8, 1 << 40, u64::MAX >> 7];
        for (i, p) in pages.iter().enumerate() {
            t.cell(p * PAGE_CELLS as u64).suspicions = i as u8 + 1;
        }
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(
                t.get(p * PAGE_CELLS as u64).unwrap().suspicions,
                i as u8 + 1
            );
        }
    }
}
