//! Shadow memory: per-address access history.

use crate::lockset::LocksetId;
use spinrace_tir::Pc;

/// One recorded access: a FastTrack-style epoch plus its static site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// Accessing thread.
    pub tid: u32,
    /// That thread's clock component at access time.
    pub clock: u32,
    /// Static location.
    pub pc: Pc,
    /// Call-chain hash (Helgrind-style context).
    pub stack: u64,
}

/// The shadow cell of one memory word.
#[derive(Clone, Debug, Default)]
pub struct ShadowCell {
    /// Most recent write.
    pub last_write: Option<AccessRecord>,
    /// Reads since the last write that are still concurrent-relevant
    /// (reads covered by the current accessor's clock are pruned lazily).
    pub reads: Vec<AccessRecord>,
    /// Eraser stage: intersection of locksets over lock-holding writes,
    /// with the last such writer, site, and stack context.
    pub write_lockset: Option<(LocksetId, u32, Pc, u64)>,
    /// Long-MSM suspicion counter (see `MsmMode::Long`).
    pub suspicions: u8,
}

impl ShadowCell {
    /// Approximate retained bytes (memory metrics).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<ShadowCell>()
            + self.reads.capacity() * std::mem::size_of::<AccessRecord>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::{BlockId, FuncId};

    #[test]
    fn default_cell_is_empty() {
        let c = ShadowCell::default();
        assert!(c.last_write.is_none());
        assert!(c.reads.is_empty());
        assert_eq!(c.suspicions, 0);
    }

    #[test]
    fn bytes_grow_with_reads() {
        let mut c = ShadowCell::default();
        let before = c.approx_bytes();
        c.reads.push(AccessRecord {
            tid: 0,
            clock: 1,
            pc: Pc::new(FuncId(0), BlockId(0), 0),
            stack: 0,
        });
        assert!(c.approx_bytes() > before);
    }
}
