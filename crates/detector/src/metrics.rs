//! Detector-state memory accounting — the series behind the paper's
//! memory-consumption figure (library mode vs. spin-augmented modes).

use crate::detector::RaceDetector;
use serde::{Deserialize, Serialize};

/// Byte-granular breakdown of a detector's retained state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorMetrics {
    /// Shadow cells (access history per word).
    pub shadow_bytes: usize,
    /// Per-thread vector clocks.
    pub thread_vc_bytes: usize,
    /// Library sync-object clocks (mutex/CV/barrier/sem).
    pub lib_sync_bytes: usize,
    /// Atomic-location clocks (DRD machine-atomic model).
    pub atomic_bytes: usize,
    /// Promoted spin-condition location clocks — the cost of the paper's
    /// feature.
    pub spin_sync_bytes: usize,
    /// Interned lockset table.
    pub lockset_bytes: usize,
    /// Race reports and contexts.
    pub report_bytes: usize,
}

impl DetectorMetrics {
    /// Total retained bytes.
    pub fn total(&self) -> usize {
        self.shadow_bytes
            + self.thread_vc_bytes
            + self.lib_sync_bytes
            + self.atomic_bytes
            + self.spin_sync_bytes
            + self.lockset_bytes
            + self.report_bytes
    }
}

/// Bytes of a `u64 → VectorClock` map's retained clocks.
pub(crate) fn vc_map_bytes(m: &fxhash::FxHashMap<u64, crate::vc::VectorClock>) -> usize {
    use std::mem::size_of;
    m.values()
        .map(|v| size_of::<u64>() + size_of::<crate::vc::VectorClock>() + v.approx_bytes())
        .sum()
}

impl RaceDetector {
    /// Per-thread vector clock bytes (replicated in every sharded worker).
    pub fn thread_vc_bytes(&self) -> usize {
        use std::mem::size_of;
        self.thread_vcs()
            .iter()
            .map(|v| size_of::<crate::vc::VectorClock>() + v.approx_bytes())
            .sum()
    }

    /// Library sync-object clock bytes (mutex/CV/barrier/sem).
    pub fn lib_sync_bytes(&self) -> usize {
        use std::mem::size_of;
        vc_map_bytes(self.mutex_vcs())
            + vc_map_bytes(self.cv_vcs())
            + self
                .barrier_vcs()
                .values()
                .map(|v| size_of::<(u64, u64)>() + v.approx_bytes())
                .sum::<usize>()
            + vc_map_bytes(self.sem_vcs())
    }

    /// Atomic-location clock bytes (DRD machine-atomic model).
    pub fn atomic_vc_bytes(&self) -> usize {
        vc_map_bytes(self.atomic_vcs())
    }

    /// Promoted spin-location clock bytes — the paper feature's cost.
    pub fn spin_sync_bytes(&self) -> usize {
        vc_map_bytes(self.sync_locs())
    }

    /// Measure retained state.
    pub fn metrics(&self) -> DetectorMetrics {
        DetectorMetrics {
            shadow_bytes: self.shadow_iter_bytes(),
            thread_vc_bytes: self.thread_vc_bytes(),
            lib_sync_bytes: self.lib_sync_bytes(),
            atomic_bytes: self.atomic_vc_bytes(),
            spin_sync_bytes: self.spin_sync_bytes(),
            lockset_bytes: self.lockset_table_bytes(),
            report_bytes: self.reports().approx_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DetectorConfig, MsmMode};
    use spinrace_tir::{BlockId, FuncId, Pc, SpinLoopId};
    use spinrace_vm::{Event, EventSink};

    #[test]
    fn spin_feature_costs_memory() {
        let pc = Pc::new(FuncId(0), BlockId(0), 0);
        let mk = |spin: bool| {
            let cfg = if spin {
                DetectorConfig::helgrind_lib_spin(MsmMode::Short)
            } else {
                DetectorConfig::helgrind_lib(MsmMode::Short)
            };
            let mut d = crate::RaceDetector::new(cfg);
            d.on_event(&Event::Spawn {
                parent: 0,
                child: 1,
                pc,
            });
            for i in 0..50u64 {
                d.on_event(&Event::Read {
                    tid: 1,
                    addr: 0x1000 + i,
                    value: 0,
                    pc,
                    stack: 0,
                    atomic: None,
                    spin: spin.then_some(SpinLoopId(0)),
                });
            }
            d.metrics()
        };
        let with = mk(true);
        let without = mk(false);
        assert!(with.spin_sync_bytes > 0);
        assert_eq!(without.spin_sync_bytes, 0);
        assert!(with.total() > 0 && without.total() > 0);
    }

    #[test]
    fn totals_add_up() {
        let m = DetectorMetrics {
            shadow_bytes: 1,
            thread_vc_bytes: 2,
            lib_sync_bytes: 3,
            atomic_bytes: 4,
            spin_sync_bytes: 5,
            lockset_bytes: 6,
            report_bytes: 7,
        };
        assert_eq!(m.total(), 28);
    }
}
