//! The race detector: an [`EventSink`] implementing pure happens-before
//! (DRD), the hybrid lockset + HB algorithm (Helgrind+), and the paper's
//! spin-loop happens-before augmentation.
//!
//! # Hot-path design (epoch fast paths)
//!
//! `on_plain_read`/`on_plain_write` are FastTrack-shaped: the race check
//! against the last write is a single epoch compare against the accessing
//! thread's *borrowed* vector clock, the read history is the adaptive
//! [`ReadState`] (inline epoch until genuinely concurrent readers appear),
//! and shadow state lives in the flat paged [`ShadowTable`]. The race-free
//! fast paths perform **no `VectorClock` clone and no heap allocation**;
//! the racy slow path reuses a persistent scratch buffer. Semantics are
//! bit-for-bit those of the retained [`crate::ReferenceDetector`] — the
//! differential proptest in `tests/epoch_equivalence.rs` holds the two to
//! identical reports.

use crate::config::{DetectorConfig, MsmMode};
use crate::lockset::{LocksetId, LocksetTable};
use crate::report::{AccessSummary, RaceKind, RaceReport, ReportCollector};
use crate::shadow::{AccessRecord, ReadState, ShadowTable};
use crate::sharded::{
    emit_report, LocksetOp, PromotionSeeds, ShardHandoff, ShardSpec, WorkerFragment, WorkerState,
};
use crate::vc::{Epoch, VectorClock};
use fxhash::FxHashMap;
use spinrace_tir::{MemOrder, Pc};
use spinrace_vm::{Event, EventSink, ThreadId};
use std::sync::Arc;

/// Dynamic race detector. Feed it a VM event stream (it implements
/// [`EventSink`]) and read the results from [`RaceDetector::reports`].
pub struct RaceDetector {
    cfg: DetectorConfig,
    /// Per-thread vector clocks.
    vcs: Vec<VectorClock>,
    /// Per-thread held locks (sorted) and the interned id thereof.
    locks_held: Vec<Vec<u64>>,
    held_ids: Vec<LocksetId>,
    locksets: LocksetTable,
    /// Release clocks of library sync objects.
    mutex_vc: FxHashMap<u64, VectorClock>,
    cv_vc: FxHashMap<u64, VectorClock>,
    barrier_vc: FxHashMap<(u64, u64), VectorClock>,
    sem_vc: FxHashMap<u64, VectorClock>,
    /// Release clocks of atomic locations (DRD machine-atomics model).
    atomic_vc: FxHashMap<u64, VectorClock>,
    /// Release clocks of *promoted* spin-condition locations — the memory
    /// cost of the paper's feature, reported by the memory figure.
    sync_loc: FxHashMap<u64, VectorClock>,
    /// Shadow memory: flat paged/sharded direct map.
    shadow: ShadowTable,
    /// Racy-write slow-path scratch (kept to avoid per-event allocation).
    read_scratch: Vec<AccessRecord>,
    reports: ReportCollector,
    events_seen: u64,
    /// Sharded-replay worker bookkeeping (`None` when running the whole
    /// stream sequentially — the common case; see [`crate::sharded`]).
    worker: Option<Box<WorkerState>>,
}

impl RaceDetector {
    /// Fresh detector for one run.
    pub fn new(cfg: DetectorConfig) -> RaceDetector {
        RaceDetector {
            cfg,
            vcs: vec![initial_vc()],
            locks_held: vec![Vec::new()],
            held_ids: vec![LocksetId::EMPTY],
            locksets: LocksetTable::default(),
            mutex_vc: FxHashMap::default(),
            cv_vc: FxHashMap::default(),
            barrier_vc: FxHashMap::default(),
            sem_vc: FxHashMap::default(),
            atomic_vc: FxHashMap::default(),
            sync_loc: FxHashMap::default(),
            shadow: ShadowTable::new(),
            read_scratch: Vec::new(),
            reports: ReportCollector::new(cfg.context_cap),
            events_seen: 0,
            worker: None,
        }
    }

    /// A sharded-replay worker: processes plain accesses only for the
    /// shards `spec` owns, replicates all synchronization events, promotes
    /// from the shared `seeds`, and logs tagged report attempts and
    /// lockset ops instead of filling its own collector. Drive it with
    /// [`RaceDetector::on_event_at`] over its event partition, then
    /// extract the [`WorkerFragment`] with [`RaceDetector::into_fragment`]
    /// for [`crate::sharded::merge_fragments`].
    pub fn new_worker(
        cfg: DetectorConfig,
        spec: ShardSpec,
        seeds: Arc<PromotionSeeds>,
    ) -> RaceDetector {
        let mut d = RaceDetector::new(cfg);
        d.worker = Some(Box::new(WorkerState::new(spec, seeds)));
        d
    }

    /// Process one event that sits at `index` in the full recorded stream
    /// — the entry point for sharded workers, whose partitions skip the
    /// events other workers own. (Feeding a detector through the plain
    /// [`EventSink`] interface indexes events implicitly by arrival.)
    pub fn on_event_at(&mut self, index: u64, ev: &Event) {
        self.events_seen = index;
        self.on_event(ev);
    }

    /// Seal a worker and hand its fragment to the merge. Panics when the
    /// detector was not constructed with [`RaceDetector::new_worker`].
    pub fn into_fragment(mut self) -> WorkerFragment {
        let w = self
            .worker
            .take()
            .expect("into_fragment requires a worker-mode detector");
        WorkerFragment {
            spec: w.spec,
            attempts: w.attempts,
            attempt_counts: w.attempt_counts,
            lockset_ops: w.lockset_ops,
            shadow_bytes: self.shadow.approx_bytes(),
            thread_vc_bytes: self.thread_vc_bytes(),
            lib_sync_bytes: self.lib_sync_bytes(),
            atomic_bytes: self.atomic_vc_bytes(),
            spin_sync_bytes: self.spin_sync_bytes(),
            promoted_locations: self.sync_loc.len(),
        }
    }

    /// Does this detector process plain accesses to `addr`? Always true
    /// sequentially; in a worker, only for shards the current phase
    /// assigns to it. Broadcast events that fall through to the
    /// plain-access path (e.g. a write to an eventually-promoted location
    /// before its promotion) stop here on non-owners.
    #[inline]
    fn owns(&self, addr: u64) -> bool {
        match &self.worker {
            None => true,
            Some(w) => w.owns_addr(addr),
        }
    }

    /// Worker mode: switch to `phase`'s shard assignment. Call only after
    /// the boundary's [`ShardHandoff`]s have been exchanged — the gate and
    /// the shadow state must change hands together.
    pub fn enter_phase(&mut self, phase: usize) {
        self.worker
            .as_mut()
            .expect("enter_phase requires a worker-mode detector")
            .enter_phase(phase);
    }

    /// Export shard `s` for an ownership handoff: lift the shadow shard
    /// out wholesale and attach the contents of every lockset id its
    /// cells reference (ids are worker-local; the importer re-interns by
    /// contents).
    pub fn export_shard(&mut self, s: usize) -> ShardHandoff {
        let payload = self.shadow.extract_shard(s);
        let mut ids: Vec<LocksetId> = payload
            .cells()
            .filter_map(|c| c.write_lockset.map(|(id, ..)| id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let locksets = ids
            .into_iter()
            .map(|id| (id, self.locksets.get(id).to_vec()))
            .collect();
        ShardHandoff {
            shard: s,
            payload,
            locksets,
        }
    }

    /// Import a handed-off shard: re-intern the sender's lockset sets
    /// locally, rewrite the cells' ids, and implant the shadow pages.
    /// Receiver-local interning cannot perturb the merged metrics — the
    /// merged lockset table is rebuilt purely from the op log — and any
    /// set present here was already created in the sequential table by
    /// this point of the stream, so the logger's intern-dedup stays
    /// faithful (see [`crate::sharded`]'s module docs).
    pub fn import_shard(&mut self, handoff: ShardHandoff) {
        let ShardHandoff {
            shard,
            mut payload,
            locksets,
        } = handoff;
        let map: FxHashMap<LocksetId, LocksetId> = locksets
            .into_iter()
            .map(|(old, contents)| (old, self.locksets.intern_presorted(&contents)))
            .collect();
        for cell in payload.cells_mut() {
            if let Some((id, ..)) = &mut cell.write_lockset {
                *id = map[id];
            }
        }
        self.shadow.implant_shard(shard, payload);
    }

    /// Seal a *sequential* detector into the merged-detection shape — the
    /// single-worker fast path of parallel replay, which skips the seed
    /// pre-pass, the pool, and the per-access ownership gate entirely and
    /// is therefore exactly as fast as a plain replay.
    pub fn into_detection(mut self) -> crate::sharded::MergedDetection {
        assert!(
            self.worker.is_none(),
            "into_detection is the sequential fast path; workers merge via fragments"
        );
        let metrics = self.metrics();
        let promoted_locations = self.sync_loc.len();
        let reports = std::mem::replace(&mut self.reports, ReportCollector::new(0));
        crate::sharded::MergedDetection {
            reports,
            metrics,
            promoted_locations,
        }
    }

    /// In worker mode, the designated logger records the base lockset
    /// intern of `tid`'s held set at lock events (the interns are
    /// identical in every worker, so exactly one worker logs them for the
    /// merge's op-order replay). Call **before** the intern itself: only
    /// table-mutating interns are logged — a local hit means an earlier
    /// logged op already created the set, so replaying it would be a
    /// no-op anyway, and skipping it keeps the log O(distinct sets).
    fn log_base_intern(&mut self, tid: ThreadId) {
        if let Some(w) = &mut self.worker {
            let held = &self.locks_held[tid as usize];
            if w.spec.is_logger() && !self.locksets.contains_presorted(held) {
                w.log_lockset_op(LocksetOp::Intern(held.clone()));
            }
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Collected reports.
    pub fn reports(&self) -> &ReportCollector {
        &self.reports
    }

    /// Number of distinct racy contexts (the paper's table metric).
    pub fn racy_contexts(&self) -> usize {
        self.reports.contexts()
    }

    /// Events processed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Promoted synchronization locations (spin feature state).
    pub fn promoted_locations(&self) -> usize {
        self.sync_loc.len()
    }

    // ---- state accessors for metrics ----

    /// Per-thread clocks (metrics).
    pub fn thread_vcs(&self) -> &[VectorClock] {
        &self.vcs
    }
    /// Mutex release clocks (metrics).
    pub fn mutex_vcs(&self) -> &FxHashMap<u64, VectorClock> {
        &self.mutex_vc
    }
    /// Condvar release clocks (metrics).
    pub fn cv_vcs(&self) -> &FxHashMap<u64, VectorClock> {
        &self.cv_vc
    }
    /// Barrier generation clocks (metrics).
    pub fn barrier_vcs(&self) -> &FxHashMap<(u64, u64), VectorClock> {
        &self.barrier_vc
    }
    /// Semaphore release clocks (metrics).
    pub fn sem_vcs(&self) -> &FxHashMap<u64, VectorClock> {
        &self.sem_vc
    }
    /// Atomic-location clocks (metrics).
    pub fn atomic_vcs(&self) -> &FxHashMap<u64, VectorClock> {
        &self.atomic_vc
    }
    /// Promoted spin locations (metrics).
    pub fn sync_locs(&self) -> &FxHashMap<u64, VectorClock> {
        &self.sync_loc
    }
    /// Total shadow bytes (metrics): probe tables, page slabs, and
    /// promoted read vectors — the honest cost of the paged layout.
    pub fn shadow_iter_bytes(&self) -> usize {
        self.shadow.approx_bytes()
    }
    /// Cheap O(shards) lower bound on shadow bytes — probe tables and
    /// page slabs without the per-page walk. For hot-path budget polls.
    pub fn shadow_resident_bytes(&self) -> usize {
        self.shadow.resident_bytes()
    }
    /// Allocated shadow pages (diagnostics).
    pub fn shadow_pages(&self) -> usize {
        self.shadow.page_count()
    }
    /// Lockset table bytes (metrics).
    pub fn lockset_table_bytes(&self) -> usize {
        self.locksets.approx_bytes()
    }

    fn ensure_thread(&mut self, t: ThreadId) {
        let t = t as usize;
        while self.vcs.len() <= t {
            self.vcs.push(initial_vc());
            self.locks_held.push(Vec::new());
            self.held_ids.push(LocksetId::EMPTY);
        }
    }

    /// Promote `addr` to a synchronization location, seeding its release
    /// clock with the last writer's epoch (the partial edge for writes
    /// that happened before promotion). A sharded worker reads the seed
    /// from the precomputed table — its own shadow memory only covers the
    /// shards it owns.
    fn promote(&mut self, addr: u64) {
        if self.sync_loc.contains_key(&addr) {
            return;
        }
        let mut vc = VectorClock::new();
        match &self.worker {
            Some(w) => {
                if let Some(e) = w.seeds.seed(addr) {
                    vc.set(e.tid, e.clock);
                }
            }
            None => {
                if let Some(cell) = self.shadow.get(addr) {
                    if let Some(w) = &cell.last_write {
                        vc.set(w.tid, w.clock);
                    }
                }
            }
        }
        self.sync_loc.insert(addr, vc);
    }

    fn is_promoted(&self, addr: u64) -> bool {
        self.sync_loc.contains_key(&addr)
    }

    /// Record an HB race, honouring the long-MSM gating. Returns whether a
    /// race was **detected** (passed the MSM gate) — deliberately *not*
    /// whether the collector kept it: the caller's Eraser-stage gating must
    /// depend only on per-location state, never on the global dedup/cap
    /// state, so that sharded parallel replay stays order-independent.
    #[allow(clippy::too_many_arguments)]
    fn report_hb(
        &mut self,
        addr: u64,
        prior: AccessRecord,
        prior_is_write: bool,
        tid: ThreadId,
        pc: Pc,
        stack: u64,
        is_write: bool,
    ) -> bool {
        if let Some(MsmMode::Long) = self.cfg.msm() {
            let cell = self.shadow.cell(addr);
            cell.suspicions = cell.suspicions.saturating_add(1);
            if cell.suspicions < 2 {
                return false;
            }
        }
        let kind = match (prior_is_write, is_write) {
            (true, true) => RaceKind::WriteWrite,
            (true, false) => RaceKind::WriteRead,
            (false, true) => RaceKind::ReadWrite,
            (false, false) => unreachable!("read-read is never a race"),
        };
        emit_report(
            &mut self.reports,
            self.worker.as_deref_mut(),
            RaceReport {
                addr,
                prior: AccessSummary {
                    tid: prior.tid,
                    pc: prior.pc,
                    stack: prior.stack,
                    is_write: prior_is_write,
                },
                current: AccessSummary {
                    tid,
                    pc,
                    stack,
                    is_write,
                },
                kind,
            },
        );
        true
    }

    fn on_plain_read(&mut self, tid: ThreadId, addr: u64, pc: Pc, stack: u64) {
        if !self.owns(addr) {
            return;
        }
        let ti = tid as usize;
        let rec = AccessRecord {
            tid,
            clock: self.vcs[ti].get(tid),
            pc,
            stack,
        };
        let vc = &self.vcs[ti];
        let cell = self.shadow.cell(addr);
        // Race check: unordered prior write — one epoch compare against
        // the *borrowed* thread clock, never a clone.
        let racy_write = cell
            .last_write
            .filter(|w| !vc.covers(Epoch::new(w.tid, w.clock)));
        match racy_write {
            // Fast path (race-free read): fold into the adaptive state.
            None => push_read(&mut cell.reads, rec, vc),
            // Racy read: report first (the reference's order), then update.
            Some(w) => {
                self.report_hb(addr, w, true, tid, pc, stack, false);
                let vc = &self.vcs[ti];
                push_read(&mut self.shadow.cell(addr).reads, rec, vc);
            }
        }
    }

    fn on_plain_write(&mut self, tid: ThreadId, addr: u64, pc: Pc, stack: u64) {
        if !self.owns(addr) {
            return;
        }
        let ti = tid as usize;
        let rec = AccessRecord {
            tid,
            clock: self.vcs[ti].get(tid),
            pc,
            stack,
        };
        let vc = &self.vcs[ti];
        let has_lockset = self.cfg.has_lockset() && !self.locks_held[ti].is_empty();
        let cell = self.shadow.cell(addr);
        let racy_write = cell
            .last_write
            .filter(|w| !vc.covers(Epoch::new(w.tid, w.clock)));
        let any_racy_read = cell
            .reads
            .as_slice()
            .iter()
            .any(|r| r.tid != tid && !vc.covers(Epoch::new(r.tid, r.clock)));

        if racy_write.is_none() && !any_racy_read {
            // Fast path (race-free write, including the same-epoch and
            // write-exclusive cases): no clones, no allocation, and at
            // most one page lookup.
            if has_lockset {
                let cur = self.held_ids[ti];
                eraser_update(
                    &mut self.locksets,
                    &mut self.reports,
                    self.worker.as_deref_mut(),
                    &mut cell.write_lockset,
                    addr,
                    cur,
                    tid,
                    pc,
                    stack,
                );
            }
            cell.last_write = Some(rec);
            cell.reads.clear();
            return;
        }

        // Slow path: copy the racy candidates into the persistent scratch
        // (no per-event allocation once warmed), report in the reference
        // detector's order, then update.
        self.read_scratch.clear();
        for r in cell.reads.as_slice() {
            if r.tid != tid && !vc.covers(Epoch::new(r.tid, r.clock)) {
                self.read_scratch.push(*r);
            }
        }
        let mut hb_reported = false;
        if let Some(w) = racy_write {
            hb_reported |= self.report_hb(addr, w, true, tid, pc, stack, true);
        }
        let scratch = std::mem::take(&mut self.read_scratch);
        for &r in &scratch {
            hb_reported |= self.report_hb(addr, r, false, tid, pc, stack, true);
        }
        self.read_scratch = scratch;

        let cell = self.shadow.cell(addr);
        if has_lockset && !hb_reported {
            let cur = self.held_ids[ti];
            eraser_update(
                &mut self.locksets,
                &mut self.reports,
                self.worker.as_deref_mut(),
                &mut cell.write_lockset,
                addr,
                cur,
                tid,
                pc,
                stack,
            );
        }
        cell.last_write = Some(rec);
        cell.reads.clear();
    }

    /// Release into a promoted location: accumulate the writer's clock.
    fn release_sync_loc(&mut self, tid: ThreadId, addr: u64) {
        let vc = &self.vcs[tid as usize];
        self.sync_loc.get_mut(&addr).expect("promoted").join(vc);
        self.vcs[tid as usize].tick(tid);
    }

    fn acquire_sync_loc(&mut self, tid: ThreadId, addr: u64) {
        if let Some(lvc) = self.sync_loc.get(&addr) {
            self.vcs[tid as usize].join(lvc);
        }
    }
}

/// Eraser stage of a plain write (hybrid only): intersect the cell's
/// running write lockset with the writer's current one; an empty
/// intersection across distinct threads is a lock-discipline violation
/// even if this interleaving happened to order the writes. Shared by the
/// fast and slow write paths so the two can never diverge. A sharded
/// worker additionally logs the intersection (by set contents) so the
/// merge can replay the sequential lockset table's evolution exactly.
#[allow(clippy::too_many_arguments)]
fn eraser_update(
    locksets: &mut LocksetTable,
    reports: &mut ReportCollector,
    mut worker: Option<&mut WorkerState>,
    write_lockset: &mut Option<(LocksetId, u32, Pc, u64)>,
    addr: u64,
    cur: LocksetId,
    tid: ThreadId,
    pc: Pc,
    stack: u64,
) {
    let new_state = match *write_lockset {
        None => (cur, tid, pc, stack),
        Some((prev_id, prev_tid, prev_pc, prev_stack)) => {
            if let Some(w) = worker.as_deref_mut() {
                // Log each distinct pair once: a memoized repeat would
                // replay as a pure no-op (`a == b` pairs never touch the
                // table at all).
                if prev_id != cur && !locksets.has_memo(prev_id, cur) {
                    w.log_lockset_op(LocksetOp::Intersect(
                        locksets.get(prev_id).to_vec(),
                        locksets.get(cur).to_vec(),
                    ));
                }
            }
            let inter = locksets.intersect(prev_id, cur);
            if prev_tid != tid && locksets.set_is_empty(inter) {
                emit_report(
                    reports,
                    worker,
                    RaceReport {
                        addr,
                        prior: AccessSummary {
                            tid: prev_tid,
                            pc: prev_pc,
                            stack: prev_stack,
                            is_write: true,
                        },
                        current: AccessSummary {
                            tid,
                            pc,
                            stack,
                            is_write: true,
                        },
                        kind: RaceKind::LocksetViolation,
                    },
                );
            }
            (inter, tid, pc, stack)
        }
    };
    *write_lockset = Some(new_state);
}

/// Fold a race-free read into the adaptive read state, preserving the
/// reference detector's `retain`-then-`push` list semantics:
///
/// * `None` → the reader owns the cell (`Exclusive`);
/// * `Exclusive` whose record is ordered before the new read (same thread,
///   or covered by the reader's clock) → overwrite in place, O(1);
/// * `Exclusive` genuinely concurrent with the new read → promote to the
///   `Shared` vector (the only allocating transition);
/// * `Shared` → prune covered entries, append (exactly the reference).
#[inline]
fn push_read(reads: &mut ReadState, rec: AccessRecord, vc: &VectorClock) {
    match reads {
        ReadState::None => *reads = ReadState::Exclusive(rec),
        ReadState::Exclusive(r) => {
            if *r == rec {
                // Same epoch, same site: nothing changes.
            } else if r.tid == rec.tid || vc.covers(Epoch::new(r.tid, r.clock)) {
                *r = rec;
            } else {
                *reads = ReadState::Shared(vec![*r, rec]);
            }
        }
        ReadState::Shared(v) => {
            v.retain(|r| !vc.covers(Epoch::new(r.tid, r.clock)));
            v.push(rec);
        }
    }
}

fn initial_vc() -> VectorClock {
    let mut vc = VectorClock::new();
    vc.set(0, 1);
    vc
}

impl EventSink for RaceDetector {
    fn on_event(&mut self, ev: &Event) {
        let index = self.events_seen;
        self.events_seen += 1;
        if let Some(w) = &mut self.worker {
            w.begin_event(index);
        }
        self.handle(ev);
    }
}

impl RaceDetector {
    /// The event cascade shared by the sequential path and sharded
    /// workers (which differ only in the ownership gate of the plain
    /// access handlers, the promotion seed source, and where reports and
    /// lockset ops land).
    fn handle(&mut self, ev: &Event) {
        match *ev {
            Event::Spawn { parent, child, .. } => {
                self.ensure_thread(parent);
                self.ensure_thread(child);
                let pvc = self.vcs[parent as usize].clone();
                let cvc = &mut self.vcs[child as usize];
                cvc.join(&pvc);
                cvc.tick(child);
                self.vcs[parent as usize].tick(parent);
            }
            Event::Join { parent, child, .. } => {
                self.ensure_thread(parent);
                self.ensure_thread(child);
                let cvc = self.vcs[child as usize].clone();
                self.vcs[parent as usize].join(&cvc);
            }
            Event::ThreadEnd { .. } => {}

            Event::Read {
                tid,
                addr,
                pc,
                stack,
                atomic,
                spin,
                ..
            } => {
                self.ensure_thread(tid);
                // Spin feature: tagged condition reads promote & suppress.
                if self.cfg.spin && spin.is_some() {
                    self.promote(addr);
                    return;
                }
                // Promoted locations are synchronization state: exempt.
                if self.cfg.spin && self.is_promoted(addr) {
                    return;
                }
                // DRD: atomics are synchronization, not data.
                if self.cfg.atomics_sync {
                    if let Some(ord) = atomic {
                        if ord.acquires() {
                            if let Some(avc) = self.atomic_vc.get(&addr) {
                                self.vcs[tid as usize].join(avc);
                            }
                        }
                        return;
                    }
                }
                self.on_plain_read(tid, addr, pc, stack);
            }
            Event::Write {
                tid,
                addr,
                pc,
                stack,
                atomic,
                ..
            } => {
                self.ensure_thread(tid);
                if self.cfg.spin && self.is_promoted(addr) {
                    // Counterpart write to a sync location: release, no
                    // race check (synchronization-race suppression).
                    self.release_sync_loc(tid, addr);
                    return;
                }
                if self.cfg.atomics_sync {
                    if let Some(ord) = atomic {
                        if ord.releases() {
                            let vc = &self.vcs[tid as usize];
                            self.atomic_vc.entry(addr).or_default().join(vc);
                            self.vcs[tid as usize].tick(tid);
                        }
                        return;
                    }
                }
                self.on_plain_write(tid, addr, pc, stack);
            }
            Event::Update {
                tid,
                addr,
                pc,
                stack,
                ..
            } => {
                self.ensure_thread(tid);
                if self.cfg.spin {
                    // Atomic RMW = machine-visible sync candidate: promote,
                    // acquire + release (arrival-counter pattern).
                    self.promote(addr);
                    self.acquire_sync_loc(tid, addr);
                    self.release_sync_loc(tid, addr);
                    return;
                }
                if self.cfg.atomics_sync {
                    // Acquire + release through one map probe.
                    let avc = self.atomic_vc.entry(addr).or_default();
                    self.vcs[tid as usize].join(avc);
                    avc.join(&self.vcs[tid as usize]);
                    self.vcs[tid as usize].tick(tid);
                    return;
                }
                // Library-knowledge-only hybrid: an RMW is just a plain
                // read+write — the source of its ad-hoc-atomics floods.
                self.on_plain_read(tid, addr, pc, stack);
                self.on_plain_write(tid, addr, pc, stack);
            }
            Event::Fence { .. } => {}

            Event::MutexLock { tid, mutex, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    if let Some(mvc) = self.mutex_vc.get(&mutex) {
                        self.vcs[tid as usize].join(mvc);
                    }
                    let held = &mut self.locks_held[tid as usize];
                    if let Err(i) = held.binary_search(&mutex) {
                        held.insert(i, mutex);
                    }
                    self.log_base_intern(tid);
                    self.held_ids[tid as usize] = self
                        .locksets
                        .intern_presorted(&self.locks_held[tid as usize]);
                }
            }
            Event::MutexUnlock { tid, mutex, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    let vc = &self.vcs[tid as usize];
                    self.mutex_vc.entry(mutex).or_default().join(vc);
                    self.vcs[tid as usize].tick(tid);
                    let held = &mut self.locks_held[tid as usize];
                    if let Ok(i) = held.binary_search(&mutex) {
                        held.remove(i);
                    }
                    self.log_base_intern(tid);
                    self.held_ids[tid as usize] = self
                        .locksets
                        .intern_presorted(&self.locks_held[tid as usize]);
                }
            }
            Event::CondSignal { tid, cv, .. } | Event::CondBroadcast { tid, cv, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    let vc = &self.vcs[tid as usize];
                    self.cv_vc.entry(cv).or_default().join(vc);
                    self.vcs[tid as usize].tick(tid);
                }
            }
            Event::CondWaitReturn { tid, cv, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    if let Some(cvc) = self.cv_vc.get(&cv) {
                        self.vcs[tid as usize].join(cvc);
                    }
                }
            }
            Event::BarrierEnter {
                tid, barrier, gen, ..
            } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    let vc = &self.vcs[tid as usize];
                    self.barrier_vc.entry((barrier, gen)).or_default().join(vc);
                    self.vcs[tid as usize].tick(tid);
                }
            }
            Event::BarrierLeave {
                tid, barrier, gen, ..
            } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    if let Some(bvc) = self.barrier_vc.get(&(barrier, gen)) {
                        self.vcs[tid as usize].join(bvc);
                    }
                }
            }
            Event::SemPost { tid, sem, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    let vc = &self.vcs[tid as usize];
                    self.sem_vc.entry(sem).or_default().join(vc);
                    self.vcs[tid as usize].tick(tid);
                }
            }
            Event::SemAcquired { tid, sem, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    if let Some(svc) = self.sem_vc.get(&sem) {
                        self.vcs[tid as usize].join(svc);
                    }
                }
            }

            Event::SpinEnter { .. } => {}
            Event::SpinExit { tid, ref reads, .. } => {
                self.ensure_thread(tid);
                if self.cfg.spin {
                    // The happens-before edge from the counterpart write to
                    // the loop exit: acquire every final-iteration read.
                    for &(addr, _) in reads {
                        self.acquire_sync_loc(tid, addr);
                    }
                }
            }
            Event::Output { .. } => {}
        }
    }
}

/// Convenience used by tests & metrics: does `ord` release?
pub fn releases(ord: MemOrder) -> bool {
    ord.releases()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use spinrace_tir::{BlockId, FuncId};

    fn pc(n: u32) -> Pc {
        Pc::new(FuncId(0), BlockId(0), n)
    }

    fn spawn(det: &mut RaceDetector, parent: u32, child: u32) {
        det.on_event(&Event::Spawn {
            parent,
            child,
            pc: pc(0),
        });
    }

    fn write(det: &mut RaceDetector, tid: u32, addr: u64, at: u32) {
        det.on_event(&Event::Write {
            tid,
            addr,
            value: 1,
            pc: pc(at),
            stack: 0,
            atomic: None,
        });
    }

    fn read(det: &mut RaceDetector, tid: u32, addr: u64, at: u32) {
        det.on_event(&Event::Read {
            tid,
            addr,
            value: 0,
            pc: pc(at),
            stack: 0,
            atomic: None,
            spin: None,
        });
    }

    #[test]
    fn unordered_writes_race() {
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        spawn(&mut d, 0, 1);
        spawn(&mut d, 0, 2);
        write(&mut d, 1, 0x1000, 1);
        write(&mut d, 2, 0x1000, 2);
        assert_eq!(d.racy_contexts(), 1);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn spawn_orders_parent_before_child() {
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        write(&mut d, 0, 0x1000, 1);
        spawn(&mut d, 0, 1);
        read(&mut d, 1, 0x1000, 2);
        assert_eq!(d.racy_contexts(), 0);
    }

    #[test]
    fn join_orders_child_before_parent() {
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        spawn(&mut d, 0, 1);
        write(&mut d, 1, 0x1000, 1);
        d.on_event(&Event::Join {
            parent: 0,
            child: 1,
            pc: pc(9),
        });
        read(&mut d, 0, 0x1000, 2);
        assert_eq!(d.racy_contexts(), 0);
    }

    #[test]
    fn unjoined_child_write_races_with_parent_read() {
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        spawn(&mut d, 0, 1);
        write(&mut d, 1, 0x1000, 1);
        read(&mut d, 0, 0x1000, 2);
        assert_eq!(d.racy_contexts(), 1);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::WriteRead);
    }

    #[test]
    fn mutex_edges_order_critical_sections() {
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        spawn(&mut d, 0, 1);
        spawn(&mut d, 0, 2);
        let mu = 0x2000;
        d.on_event(&Event::MutexLock {
            tid: 1,
            mutex: mu,
            pc: pc(1),
        });
        write(&mut d, 1, 0x1000, 2);
        d.on_event(&Event::MutexUnlock {
            tid: 1,
            mutex: mu,
            pc: pc(3),
        });
        d.on_event(&Event::MutexLock {
            tid: 2,
            mutex: mu,
            pc: pc(4),
        });
        write(&mut d, 2, 0x1000, 5);
        d.on_event(&Event::MutexUnlock {
            tid: 2,
            mutex: mu,
            pc: pc(6),
        });
        assert_eq!(d.racy_contexts(), 0);
    }

    #[test]
    fn nolib_ignores_mutex_events() {
        let mut d = RaceDetector::new(DetectorConfig::helgrind_nolib_spin(MsmMode::Short));
        spawn(&mut d, 0, 1);
        spawn(&mut d, 0, 2);
        let mu = 0x2000;
        d.on_event(&Event::MutexLock {
            tid: 1,
            mutex: mu,
            pc: pc(1),
        });
        write(&mut d, 1, 0x1000, 2);
        d.on_event(&Event::MutexUnlock {
            tid: 1,
            mutex: mu,
            pc: pc(3),
        });
        d.on_event(&Event::MutexLock {
            tid: 2,
            mutex: mu,
            pc: pc(4),
        });
        write(&mut d, 2, 0x1000, 5);
        assert_eq!(d.racy_contexts(), 1, "library knowledge removed");
    }

    #[test]
    fn spin_promotion_suppresses_and_orders() {
        // T1: data=1; flag=1.   T2: spin-reads flag, exits, reads data.
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib_spin(MsmMode::Short));
        spawn(&mut d, 0, 1);
        spawn(&mut d, 0, 2);
        let (data, flag) = (0x1000, 0x1001);
        // T2 spins first (reads 0), promoting flag.
        d.on_event(&Event::Read {
            tid: 2,
            addr: flag,
            value: 0,
            pc: pc(10),
            stack: 0,
            atomic: None,
            spin: Some(spinrace_tir::SpinLoopId(0)),
        });
        write(&mut d, 1, data, 1);
        write(&mut d, 1, flag, 2); // counterpart write: release, no check
        d.on_event(&Event::Read {
            tid: 2,
            addr: flag,
            value: 1,
            pc: pc(10),
            stack: 0,
            atomic: None,
            spin: Some(spinrace_tir::SpinLoopId(0)),
        });
        d.on_event(&Event::SpinExit {
            tid: 2,
            spin: spinrace_tir::SpinLoopId(0),
            reads: vec![(flag, pc(10))],
        });
        read(&mut d, 2, data, 11);
        assert_eq!(d.racy_contexts(), 0, "both sync and apparent race gone");
        assert_eq!(d.promoted_locations(), 1);
    }

    #[test]
    fn without_spin_the_same_trace_floods() {
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        spawn(&mut d, 0, 1);
        spawn(&mut d, 0, 2);
        let (data, flag) = (0x1000, 0x1001);
        read(&mut d, 2, flag, 10); // spin read seen as plain
        write(&mut d, 1, data, 1);
        write(&mut d, 1, flag, 2);
        read(&mut d, 2, flag, 10);
        read(&mut d, 2, data, 11);
        // flag: read-write + write-read context(s); data: write-read.
        assert!(d.racy_contexts() >= 2);
    }

    #[test]
    fn update_is_sync_with_spin_feature() {
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib_spin(MsmMode::Short));
        spawn(&mut d, 0, 1);
        spawn(&mut d, 0, 2);
        let (data, cnt) = (0x1000, 0x1001);
        write(&mut d, 1, data, 1);
        d.on_event(&Event::Update {
            tid: 1,
            addr: cnt,
            old: 0,
            new: 1,
            pc: pc(2),
            stack: 0,
            order: MemOrder::SeqCst,
        });
        d.on_event(&Event::Update {
            tid: 2,
            addr: cnt,
            old: 1,
            new: 2,
            pc: pc(3),
            stack: 0,
            order: MemOrder::SeqCst,
        });
        read(&mut d, 2, data, 4);
        assert_eq!(d.racy_contexts(), 0, "RMW chain carries the clock");
    }

    #[test]
    fn update_floods_without_spin_or_atomics() {
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        spawn(&mut d, 0, 1);
        spawn(&mut d, 0, 2);
        let cnt = 0x1001;
        d.on_event(&Event::Update {
            tid: 1,
            addr: cnt,
            old: 0,
            new: 1,
            pc: pc(2),
            stack: 0,
            order: MemOrder::SeqCst,
        });
        d.on_event(&Event::Update {
            tid: 2,
            addr: cnt,
            old: 1,
            new: 2,
            pc: pc(3),
            stack: 0,
            order: MemOrder::SeqCst,
        });
        assert!(d.racy_contexts() >= 1, "lib-only hybrid flags RMW pairs");
    }

    #[test]
    fn drd_handles_atomics_but_not_plain_flags() {
        let mut d = RaceDetector::new(DetectorConfig::drd());
        spawn(&mut d, 0, 1);
        spawn(&mut d, 0, 2);
        let (data, cnt, flag) = (0x1000, 0x1001, 0x1002);
        // atomic chain: fine
        write(&mut d, 1, data, 1);
        d.on_event(&Event::Update {
            tid: 1,
            addr: cnt,
            old: 0,
            new: 1,
            pc: pc(2),
            stack: 0,
            order: MemOrder::SeqCst,
        });
        d.on_event(&Event::Update {
            tid: 2,
            addr: cnt,
            old: 1,
            new: 2,
            pc: pc(3),
            stack: 0,
            order: MemOrder::SeqCst,
        });
        read(&mut d, 2, data, 4);
        assert_eq!(d.racy_contexts(), 0);
        // plain flag handoff: DRD floods (no spin knowledge)
        write(&mut d, 1, flag, 5);
        read(&mut d, 2, flag, 6);
        assert_eq!(d.racy_contexts(), 1);
    }

    #[test]
    fn lockset_violation_catches_hb_hidden_race() {
        // T1 writes x under m1; unrelated sync orders T2 after T1; T2
        // writes x under m2. Pure HB is silent; the hybrid's Eraser stage
        // reports a lockset violation.
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        spawn(&mut d, 0, 1);
        let x = 0x1000;
        let (m1, m2, m3) = (0x2000, 0x2001, 0x2002);
        d.on_event(&Event::MutexLock {
            tid: 0,
            mutex: m1,
            pc: pc(1),
        });
        write(&mut d, 0, x, 2);
        d.on_event(&Event::MutexUnlock {
            tid: 0,
            mutex: m1,
            pc: pc(3),
        });
        // ordering through unrelated mutex m3
        d.on_event(&Event::MutexLock {
            tid: 0,
            mutex: m3,
            pc: pc(4),
        });
        d.on_event(&Event::MutexUnlock {
            tid: 0,
            mutex: m3,
            pc: pc(5),
        });
        d.on_event(&Event::MutexLock {
            tid: 1,
            mutex: m3,
            pc: pc(6),
        });
        d.on_event(&Event::MutexUnlock {
            tid: 1,
            mutex: m3,
            pc: pc(7),
        });
        d.on_event(&Event::MutexLock {
            tid: 1,
            mutex: m2,
            pc: pc(8),
        });
        write(&mut d, 1, x, 9);
        d.on_event(&Event::MutexUnlock {
            tid: 1,
            mutex: m2,
            pc: pc(10),
        });
        assert_eq!(d.racy_contexts(), 1);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::LocksetViolation);
        // DRD on the same trace: silent (this is a DRD "missed race").
        let mut drd = RaceDetector::new(DetectorConfig::drd());
        // replay
        spawn(&mut drd, 0, 1);
        drd.on_event(&Event::MutexLock {
            tid: 0,
            mutex: m1,
            pc: pc(1),
        });
        write(&mut drd, 0, x, 2);
        drd.on_event(&Event::MutexUnlock {
            tid: 0,
            mutex: m1,
            pc: pc(3),
        });
        drd.on_event(&Event::MutexLock {
            tid: 0,
            mutex: m3,
            pc: pc(4),
        });
        drd.on_event(&Event::MutexUnlock {
            tid: 0,
            mutex: m3,
            pc: pc(5),
        });
        drd.on_event(&Event::MutexLock {
            tid: 1,
            mutex: m3,
            pc: pc(6),
        });
        drd.on_event(&Event::MutexUnlock {
            tid: 1,
            mutex: m3,
            pc: pc(7),
        });
        drd.on_event(&Event::MutexLock {
            tid: 1,
            mutex: m2,
            pc: pc(8),
        });
        write(&mut drd, 1, x, 9);
        drd.on_event(&Event::MutexUnlock {
            tid: 1,
            mutex: m2,
            pc: pc(10),
        });
        assert_eq!(drd.racy_contexts(), 0);
    }

    #[test]
    fn cv_handoff_has_no_lockset_false_positive() {
        // Producer/consumer with CV ordering and lock-free data writes —
        // the hybrid must stay silent (writers hold no locks).
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        spawn(&mut d, 0, 1);
        let (data, cv) = (0x1000, 0x3000);
        write(&mut d, 0, data, 1);
        d.on_event(&Event::CondSignal {
            tid: 0,
            cv,
            pc: pc(2),
        });
        d.on_event(&Event::CondWaitReturn {
            tid: 1,
            cv,
            mutex: 0x2000,
            pc: pc(3),
        });
        write(&mut d, 1, data, 4);
        assert_eq!(d.racy_contexts(), 0);
    }

    #[test]
    fn long_msm_requires_second_confirmation() {
        let short = {
            let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
            spawn(&mut d, 0, 1);
            spawn(&mut d, 0, 2);
            write(&mut d, 1, 0x1000, 1);
            write(&mut d, 2, 0x1000, 2);
            d.racy_contexts()
        };
        assert_eq!(short, 1);
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Long));
        spawn(&mut d, 0, 1);
        spawn(&mut d, 0, 2);
        write(&mut d, 1, 0x1000, 1);
        write(&mut d, 2, 0x1000, 2); // first suspicion: silent
        assert_eq!(d.racy_contexts(), 0);
        write(&mut d, 1, 0x1000, 1); // second unordered pair: reported
        assert_eq!(d.racy_contexts(), 1);
    }

    #[test]
    fn barrier_events_give_all_to_all_ordering() {
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        spawn(&mut d, 0, 1);
        spawn(&mut d, 0, 2);
        let (a, b) = (0x1000, 0x1001);
        write(&mut d, 1, a, 1);
        write(&mut d, 2, b, 2);
        for t in [1, 2] {
            d.on_event(&Event::BarrierEnter {
                tid: t,
                barrier: 0x4000,
                gen: 0,
                pc: pc(3),
            });
        }
        for t in [1, 2] {
            d.on_event(&Event::BarrierLeave {
                tid: t,
                barrier: 0x4000,
                gen: 0,
                pc: pc(4),
            });
        }
        read(&mut d, 1, b, 5);
        read(&mut d, 2, a, 6);
        assert_eq!(d.racy_contexts(), 0);
    }

    #[test]
    fn context_cap_saturates_at_configured_value() {
        let mut d = RaceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short).with_cap(5));
        spawn(&mut d, 0, 1);
        spawn(&mut d, 0, 2);
        for i in 0..20 {
            write(&mut d, 1, 0x1000 + i, i as u32);
            write(&mut d, 2, 0x1000 + i, 100 + i as u32);
        }
        assert_eq!(d.racy_contexts(), 5);
        assert!(d.reports().dropped() > 0);
    }
}
