//! The retained **slow full-vector-clock reference detector**.
//!
//! This is the pre-epoch-fast-path implementation of [`crate::RaceDetector`],
//! kept verbatim for two jobs:
//!
//! * the differential proptest (`tests/epoch_equivalence.rs`) replays random
//!   event schedules through both detectors and asserts identical reports —
//!   the semantic ground truth the fast paths must preserve;
//! * the `perf` binary measures it alongside the fast detector, so the
//!   speedup of the epoch representation stays an honestly recomputed
//!   number instead of a stale claim in a doc.
//!
//! Its costs are the ones the fast detector eliminates: a full
//! `VectorClock` clone on **every** plain access, a `Vec` of read records
//! per shadow cell even for never-shared locations, and SipHash `HashMap`
//! lookups for shadow and sync state. Keep this file dumb — any
//! "optimization" here defeats its purpose.

use crate::config::{DetectorConfig, MsmMode};
use crate::lockset::{LocksetId, LocksetTable};
use crate::report::{AccessSummary, RaceKind, RaceReport, ReportCollector};
use crate::shadow::AccessRecord;
use crate::vc::{Epoch, VectorClock};
use spinrace_tir::Pc;
use spinrace_vm::{Event, EventSink, ThreadId};
use std::collections::HashMap;

/// Shadow cell of the reference detector: always a full read vector.
#[derive(Clone, Debug, Default)]
struct RefShadowCell {
    last_write: Option<AccessRecord>,
    reads: Vec<AccessRecord>,
    write_lockset: Option<(LocksetId, u32, Pc, u64)>,
    suspicions: u8,
}

/// The slow reference detector. Same event-level semantics as
/// [`crate::RaceDetector`], pre-optimization representation.
pub struct ReferenceDetector {
    cfg: DetectorConfig,
    vcs: Vec<VectorClock>,
    locks_held: Vec<Vec<u64>>,
    held_ids: Vec<LocksetId>,
    locksets: LocksetTable,
    mutex_vc: HashMap<u64, VectorClock>,
    cv_vc: HashMap<u64, VectorClock>,
    barrier_vc: HashMap<(u64, u64), VectorClock>,
    sem_vc: HashMap<u64, VectorClock>,
    atomic_vc: HashMap<u64, VectorClock>,
    sync_loc: HashMap<u64, VectorClock>,
    shadow: HashMap<u64, RefShadowCell>,
    reports: ReportCollector,
    events_seen: u64,
}

impl ReferenceDetector {
    /// Fresh reference detector for one run.
    pub fn new(cfg: DetectorConfig) -> ReferenceDetector {
        ReferenceDetector {
            cfg,
            vcs: vec![initial_vc()],
            locks_held: vec![Vec::new()],
            held_ids: vec![LocksetId::EMPTY],
            locksets: LocksetTable::default(),
            mutex_vc: HashMap::new(),
            cv_vc: HashMap::new(),
            barrier_vc: HashMap::new(),
            sem_vc: HashMap::new(),
            atomic_vc: HashMap::new(),
            sync_loc: HashMap::new(),
            shadow: HashMap::new(),
            reports: ReportCollector::new(cfg.context_cap),
            events_seen: 0,
        }
    }

    /// Collected reports.
    pub fn reports(&self) -> &ReportCollector {
        &self.reports
    }

    /// Number of distinct racy contexts.
    pub fn racy_contexts(&self) -> usize {
        self.reports.contexts()
    }

    /// Events processed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Promoted synchronization locations.
    pub fn promoted_locations(&self) -> usize {
        self.sync_loc.len()
    }

    /// Approximate shadow bytes (HashMap representation).
    pub fn shadow_bytes(&self) -> usize {
        self.shadow
            .values()
            .map(|c| {
                std::mem::size_of::<u64>()
                    + std::mem::size_of::<RefShadowCell>()
                    + c.reads.capacity() * std::mem::size_of::<AccessRecord>()
            })
            .sum()
    }

    fn ensure_thread(&mut self, t: ThreadId) {
        let t = t as usize;
        while self.vcs.len() <= t {
            self.vcs.push(initial_vc());
            self.locks_held.push(Vec::new());
            self.held_ids.push(LocksetId::EMPTY);
        }
    }

    fn epoch(&self, t: ThreadId) -> u32 {
        self.vcs[t as usize].get(t)
    }

    fn promote(&mut self, addr: u64) {
        if self.sync_loc.contains_key(&addr) {
            return;
        }
        let mut vc = VectorClock::new();
        if let Some(cell) = self.shadow.get(&addr) {
            if let Some(w) = &cell.last_write {
                vc.set(w.tid, w.clock);
            }
        }
        self.sync_loc.insert(addr, vc);
    }

    fn is_promoted(&self, addr: u64) -> bool {
        self.sync_loc.contains_key(&addr)
    }

    #[allow(clippy::too_many_arguments)]
    fn report_hb(
        &mut self,
        addr: u64,
        prior: AccessRecord,
        prior_is_write: bool,
        tid: ThreadId,
        pc: Pc,
        stack: u64,
        is_write: bool,
    ) -> bool {
        if let Some(MsmMode::Long) = self.cfg.msm() {
            let cell = self.shadow.entry(addr).or_default();
            cell.suspicions = cell.suspicions.saturating_add(1);
            if cell.suspicions < 2 {
                return false;
            }
        }
        let kind = match (prior_is_write, is_write) {
            (true, true) => RaceKind::WriteWrite,
            (true, false) => RaceKind::WriteRead,
            (false, true) => RaceKind::ReadWrite,
            (false, false) => unreachable!("read-read is never a race"),
        };
        self.reports.record(RaceReport {
            addr,
            prior: AccessSummary {
                tid: prior.tid,
                pc: prior.pc,
                stack: prior.stack,
                is_write: prior_is_write,
            },
            current: AccessSummary {
                tid,
                pc,
                stack,
                is_write,
            },
            kind,
        });
        // "Detected", not "recorded": the Eraser gate must not observe the
        // collector's global dedup/cap state (see RaceDetector::report_hb).
        true
    }

    fn on_plain_read(&mut self, tid: ThreadId, addr: u64, pc: Pc, stack: u64) {
        let clock = self.epoch(tid);
        let prior = self
            .shadow
            .get(&addr)
            .and_then(|c| c.last_write)
            .filter(|w| !self.vcs[tid as usize].covers(Epoch::new(w.tid, w.clock)));
        if let Some(w) = prior {
            self.report_hb(addr, w, true, tid, pc, stack, false);
        }
        let vc = self.vcs[tid as usize].clone();
        let cell = self.shadow.entry(addr).or_default();
        cell.reads
            .retain(|r| !vc.covers(Epoch::new(r.tid, r.clock)));
        cell.reads.push(AccessRecord {
            tid,
            clock,
            pc,
            stack,
        });
    }

    fn on_plain_write(&mut self, tid: ThreadId, addr: u64, pc: Pc, stack: u64) {
        let clock = self.epoch(tid);
        let vc = self.vcs[tid as usize].clone();
        let (prior_write, concurrent_reads) = match self.shadow.get(&addr) {
            Some(c) => {
                let pw = c
                    .last_write
                    .filter(|w| !vc.covers(Epoch::new(w.tid, w.clock)));
                let rs: Vec<AccessRecord> = c
                    .reads
                    .iter()
                    .copied()
                    .filter(|r| r.tid != tid && !vc.covers(Epoch::new(r.tid, r.clock)))
                    .collect();
                (pw, rs)
            }
            None => (None, Vec::new()),
        };
        let mut hb_reported = false;
        if let Some(w) = prior_write {
            hb_reported |= self.report_hb(addr, w, true, tid, pc, stack, true);
        }
        for r in concurrent_reads {
            hb_reported |= self.report_hb(addr, r, false, tid, pc, stack, true);
        }

        if self.cfg.has_lockset() && !hb_reported && !self.locks_held[tid as usize].is_empty() {
            let cur = self.held_ids[tid as usize];
            let prev = self.shadow.get(&addr).and_then(|c| c.write_lockset);
            let new_state = match prev {
                None => (cur, tid, pc, stack),
                Some((prev_id, prev_tid, prev_pc, prev_stack)) => {
                    let inter = self.locksets.intersect(prev_id, cur);
                    if prev_tid != tid && self.locksets.set_is_empty(inter) {
                        self.reports.record(RaceReport {
                            addr,
                            prior: AccessSummary {
                                tid: prev_tid,
                                pc: prev_pc,
                                stack: prev_stack,
                                is_write: true,
                            },
                            current: AccessSummary {
                                tid,
                                pc,
                                stack,
                                is_write: true,
                            },
                            kind: RaceKind::LocksetViolation,
                        });
                    }
                    (inter, tid, pc, stack)
                }
            };
            self.shadow.entry(addr).or_default().write_lockset = Some(new_state);
        }

        let cell = self.shadow.entry(addr).or_default();
        cell.last_write = Some(AccessRecord {
            tid,
            clock,
            pc,
            stack,
        });
        cell.reads.clear();
    }

    fn release_sync_loc(&mut self, tid: ThreadId, addr: u64) {
        let vc = self.vcs[tid as usize].clone();
        self.sync_loc.get_mut(&addr).expect("promoted").join(&vc);
        self.vcs[tid as usize].tick(tid);
    }

    fn acquire_sync_loc(&mut self, tid: ThreadId, addr: u64) {
        if let Some(lvc) = self.sync_loc.get(&addr) {
            let lvc = lvc.clone();
            self.vcs[tid as usize].join(&lvc);
        }
    }
}

fn initial_vc() -> VectorClock {
    let mut vc = VectorClock::new();
    vc.set(0, 1);
    vc
}

impl EventSink for ReferenceDetector {
    fn on_event(&mut self, ev: &Event) {
        self.events_seen += 1;
        match *ev {
            Event::Spawn { parent, child, .. } => {
                self.ensure_thread(parent);
                self.ensure_thread(child);
                let pvc = self.vcs[parent as usize].clone();
                let cvc = &mut self.vcs[child as usize];
                cvc.join(&pvc);
                cvc.tick(child);
                self.vcs[parent as usize].tick(parent);
            }
            Event::Join { parent, child, .. } => {
                self.ensure_thread(parent);
                self.ensure_thread(child);
                let cvc = self.vcs[child as usize].clone();
                self.vcs[parent as usize].join(&cvc);
            }
            Event::ThreadEnd { .. } => {}

            Event::Read {
                tid,
                addr,
                pc,
                stack,
                atomic,
                spin,
                ..
            } => {
                self.ensure_thread(tid);
                if self.cfg.spin && spin.is_some() {
                    self.promote(addr);
                    return;
                }
                if self.cfg.spin && self.is_promoted(addr) {
                    return;
                }
                if self.cfg.atomics_sync {
                    if let Some(ord) = atomic {
                        if ord.acquires() {
                            if let Some(avc) = self.atomic_vc.get(&addr) {
                                let avc = avc.clone();
                                self.vcs[tid as usize].join(&avc);
                            }
                        }
                        return;
                    }
                }
                self.on_plain_read(tid, addr, pc, stack);
            }
            Event::Write {
                tid,
                addr,
                pc,
                stack,
                atomic,
                ..
            } => {
                self.ensure_thread(tid);
                if self.cfg.spin && self.is_promoted(addr) {
                    self.release_sync_loc(tid, addr);
                    return;
                }
                if self.cfg.atomics_sync {
                    if let Some(ord) = atomic {
                        if ord.releases() {
                            let vc = self.vcs[tid as usize].clone();
                            self.atomic_vc.entry(addr).or_default().join(&vc);
                            self.vcs[tid as usize].tick(tid);
                        }
                        return;
                    }
                }
                self.on_plain_write(tid, addr, pc, stack);
            }
            Event::Update {
                tid,
                addr,
                pc,
                stack,
                ..
            } => {
                self.ensure_thread(tid);
                if self.cfg.spin {
                    self.promote(addr);
                    self.acquire_sync_loc(tid, addr);
                    self.release_sync_loc(tid, addr);
                    return;
                }
                if self.cfg.atomics_sync {
                    let avc = self.atomic_vc.entry(addr).or_default().clone();
                    self.vcs[tid as usize].join(&avc);
                    let vc = self.vcs[tid as usize].clone();
                    self.atomic_vc.entry(addr).or_default().join(&vc);
                    self.vcs[tid as usize].tick(tid);
                    return;
                }
                self.on_plain_read(tid, addr, pc, stack);
                self.on_plain_write(tid, addr, pc, stack);
            }
            Event::Fence { .. } => {}

            Event::MutexLock { tid, mutex, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    if let Some(mvc) = self.mutex_vc.get(&mutex) {
                        let mvc = mvc.clone();
                        self.vcs[tid as usize].join(&mvc);
                    }
                    let held = &mut self.locks_held[tid as usize];
                    if let Err(i) = held.binary_search(&mutex) {
                        held.insert(i, mutex);
                    }
                    self.held_ids[tid as usize] =
                        self.locksets.intern(&self.locks_held[tid as usize]);
                }
            }
            Event::MutexUnlock { tid, mutex, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    let vc = self.vcs[tid as usize].clone();
                    self.mutex_vc.entry(mutex).or_default().join(&vc);
                    self.vcs[tid as usize].tick(tid);
                    let held = &mut self.locks_held[tid as usize];
                    if let Ok(i) = held.binary_search(&mutex) {
                        held.remove(i);
                    }
                    self.held_ids[tid as usize] =
                        self.locksets.intern(&self.locks_held[tid as usize]);
                }
            }
            Event::CondSignal { tid, cv, .. } | Event::CondBroadcast { tid, cv, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    let vc = self.vcs[tid as usize].clone();
                    self.cv_vc.entry(cv).or_default().join(&vc);
                    self.vcs[tid as usize].tick(tid);
                }
            }
            Event::CondWaitReturn { tid, cv, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    if let Some(cvc) = self.cv_vc.get(&cv) {
                        let cvc = cvc.clone();
                        self.vcs[tid as usize].join(&cvc);
                    }
                }
            }
            Event::BarrierEnter {
                tid, barrier, gen, ..
            } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    let vc = self.vcs[tid as usize].clone();
                    self.barrier_vc.entry((barrier, gen)).or_default().join(&vc);
                    self.vcs[tid as usize].tick(tid);
                }
            }
            Event::BarrierLeave {
                tid, barrier, gen, ..
            } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    if let Some(bvc) = self.barrier_vc.get(&(barrier, gen)) {
                        let bvc = bvc.clone();
                        self.vcs[tid as usize].join(&bvc);
                    }
                }
            }
            Event::SemPost { tid, sem, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    let vc = self.vcs[tid as usize].clone();
                    self.sem_vc.entry(sem).or_default().join(&vc);
                    self.vcs[tid as usize].tick(tid);
                }
            }
            Event::SemAcquired { tid, sem, .. } => {
                self.ensure_thread(tid);
                if self.cfg.lib {
                    if let Some(svc) = self.sem_vc.get(&sem) {
                        let svc = svc.clone();
                        self.vcs[tid as usize].join(&svc);
                    }
                }
            }

            Event::SpinEnter { .. } => {}
            Event::SpinExit { tid, ref reads, .. } => {
                self.ensure_thread(tid);
                if self.cfg.spin {
                    for &(addr, _) in reads {
                        self.acquire_sync_loc(tid, addr);
                    }
                }
            }
            Event::Output { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::{BlockId, FuncId};

    fn pc(n: u32) -> Pc {
        Pc::new(FuncId(0), BlockId(0), n)
    }

    #[test]
    fn reference_detects_the_basic_race() {
        let mut d = ReferenceDetector::new(DetectorConfig::helgrind_lib(MsmMode::Short));
        d.on_event(&Event::Spawn {
            parent: 0,
            child: 1,
            pc: pc(0),
        });
        d.on_event(&Event::Spawn {
            parent: 0,
            child: 2,
            pc: pc(0),
        });
        for t in [1u32, 2u32] {
            d.on_event(&Event::Write {
                tid: t,
                addr: 0x1000,
                value: 1,
                pc: pc(t),
                stack: 0,
                atomic: None,
            });
        }
        assert_eq!(d.racy_contexts(), 1);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::WriteWrite);
    }
}
