//! Sync-preserving predictive race detection — races in *reorderings*
//! of the recorded trace, from one linear pass.
//!
//! The happens-before lineup only reports races the recorded
//! interleaving happened to witness: every mutex release→acquire pair
//! becomes an ordering edge, even between critical sections that touch
//! disjoint data and could legally run in either order. Sync-preserving
//! prediction (Mathur, Pavlogiannis & Viswanathan, *Optimal Prediction
//! of Synchronization-Preserving Races*) keeps a critical-section edge
//! only when reversing it would change an observed value — here
//! approximated per variable: the release of a critical section on `m`
//! orders a later access to `x` inside a critical section on `m` **only
//! if the earlier section conflicted on `x`** (wrote `x` for any later
//! access; read `x` for a later write). Hard program-structure edges —
//! spawn/join, condition variables, barriers, semaphores, and machine
//! atomics — are always kept: reversing those would not be a
//! synchronization-preserving correct reordering.
//!
//! Because this detector only ever *drops* edges relative to the pure
//! happens-before relation, any pair unordered under HB stays unordered
//! here: its race set is a **superset of the HB race set** on the same
//! stream, by construction (the workload-oracle suite enforces this
//! differentially). Soundness is per the per-variable abstraction: a
//! predicted pair is racy in some sync-preserving reordering of the
//! recorded trace provided the intervening critical sections are
//! value-independent of the accesses — the classic trade the paper's
//! linear-time variant makes.
//!
//! The pass is inherently sequential (release clocks flow through the
//! per-lock conflict maps in trace order), so the sharded parallel
//! engine refuses predictive configurations with a structured
//! `Unsupported` error instead of silently degrading; sequential and
//! chunk-streamed replay both work and are byte-identical.

use crate::config::DetectorConfig;
use crate::metrics::{vc_map_bytes, DetectorMetrics};
use crate::report::{AccessSummary, RaceKind, RaceReport, ReportCollector};
use crate::sharded::MergedDetection;
use crate::vc::{Epoch, VectorClock};
use fxhash::FxHashMap;
use spinrace_tir::Pc;
use spinrace_vm::{Event, EventSink, ThreadId};
use std::mem::size_of;

/// A thread's last access to one address: its epoch plus the static
/// site, enough to both order against and report.
#[derive(Clone, Copy, Debug)]
struct SiteEpoch {
    clock: u32,
    pc: Pc,
    stack: u64,
}

/// Per-address access history: the last write and last read of *every*
/// thread (an epoch per thread, not just the globally last access —
/// prediction must check the current access against each thread's
/// frontier, since dropping edges can leave several unordered priors).
#[derive(Default)]
struct AddrState {
    writes: FxHashMap<ThreadId, SiteEpoch>,
    reads: FxHashMap<ThreadId, SiteEpoch>,
}

/// The footprint of one open critical section: which addresses it wrote
/// and read so far (folded into the per-lock conflict maps at unlock).
#[derive(Default)]
struct CsFootprint {
    /// addr → (wrote, read)
    accesses: FxHashMap<u64, (bool, bool)>,
}

/// The sync-preserving predictive detector. Feed it a VM event stream
/// (it implements [`EventSink`]) and read results from
/// [`SyncPreservingDetector::reports`] — same surface as
/// [`crate::RaceDetector`], same [`ReportCollector`] dedup/cap
/// semantics, reusable by every replay path.
pub struct SyncPreservingDetector {
    cfg: DetectorConfig,
    /// Per-thread clocks over the *weakened* ordering.
    vcs: Vec<VectorClock>,
    /// Per-thread held locks (sorted).
    held: Vec<Vec<u64>>,
    /// Per-thread open critical-section footprints, keyed by lock.
    cs: Vec<FxHashMap<u64, CsFootprint>>,
    /// Per-lock conflict maps: `rel_w[m][x]` joins the release clocks of
    /// every closed critical section on `m` that wrote `x`; `rel_r` the
    /// same for reads. The conditional edge is applied at access time.
    rel_w: FxHashMap<u64, FxHashMap<u64, VectorClock>>,
    rel_r: FxHashMap<u64, FxHashMap<u64, VectorClock>>,
    /// Hard-edge release clocks (always kept).
    cv_vc: FxHashMap<u64, VectorClock>,
    barrier_vc: FxHashMap<(u64, u64), VectorClock>,
    sem_vc: FxHashMap<u64, VectorClock>,
    atomic_vc: FxHashMap<u64, VectorClock>,
    /// Per-address frontier state.
    state: FxHashMap<u64, AddrState>,
    /// Racy-pair scratch (kept to avoid per-event allocation).
    scratch: Vec<(AccessSummary, RaceKind)>,
    reports: ReportCollector,
    events_seen: u64,
}

impl SyncPreservingDetector {
    /// Fresh detector for one pass.
    pub fn new(cfg: DetectorConfig) -> SyncPreservingDetector {
        SyncPreservingDetector {
            cfg,
            vcs: vec![initial_vc()],
            held: vec![Vec::new()],
            cs: vec![FxHashMap::default()],
            rel_w: FxHashMap::default(),
            rel_r: FxHashMap::default(),
            cv_vc: FxHashMap::default(),
            barrier_vc: FxHashMap::default(),
            sem_vc: FxHashMap::default(),
            atomic_vc: FxHashMap::default(),
            state: FxHashMap::default(),
            scratch: Vec::new(),
            reports: ReportCollector::new(cfg.context_cap),
            events_seen: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Collected reports.
    pub fn reports(&self) -> &ReportCollector {
        &self.reports
    }

    /// Number of distinct racy contexts.
    pub fn racy_contexts(&self) -> usize {
        self.reports.contexts()
    }

    /// Events processed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Prediction promotes no spin locations; the field exists so every
    /// detector seals into the same [`MergedDetection`] shape.
    pub fn promoted_locations(&self) -> usize {
        0
    }

    /// Retained per-address frontier bytes — the analogue of shadow
    /// memory, and the quantity budget polls bound.
    pub fn shadow_resident_bytes(&self) -> usize {
        let entry = size_of::<u64>() + size_of::<AddrState>();
        let site = size_of::<(ThreadId, SiteEpoch)>();
        self.state
            .values()
            .map(|s| entry + (s.writes.len() + s.reads.len()) * site)
            .sum()
    }

    /// Measure retained state in the shared metrics shape. Conflict maps
    /// count as library-sync state (they are the per-lock machinery),
    /// the per-address frontier as shadow state.
    pub fn metrics(&self) -> DetectorMetrics {
        let rel_bytes = |m: &FxHashMap<u64, FxHashMap<u64, VectorClock>>| -> usize {
            m.values()
                .map(|per| size_of::<u64>() + vc_map_bytes(per))
                .sum()
        };
        DetectorMetrics {
            shadow_bytes: self.shadow_resident_bytes(),
            thread_vc_bytes: self
                .vcs
                .iter()
                .map(|v| size_of::<VectorClock>() + v.approx_bytes())
                .sum(),
            lib_sync_bytes: vc_map_bytes(&self.cv_vc)
                + self
                    .barrier_vc
                    .values()
                    .map(|v| size_of::<(u64, u64)>() + v.approx_bytes())
                    .sum::<usize>()
                + vc_map_bytes(&self.sem_vc)
                + rel_bytes(&self.rel_w)
                + rel_bytes(&self.rel_r),
            atomic_bytes: vc_map_bytes(&self.atomic_vc),
            spin_sync_bytes: 0,
            lockset_bytes: 0,
            report_bytes: self.reports.approx_bytes(),
        }
    }

    /// Seal into the merged-detection shape (sequential only — there is
    /// no worker mode; the parallel engine refuses predictive configs).
    pub fn into_detection(mut self) -> MergedDetection {
        let metrics = self.metrics();
        let reports = std::mem::replace(&mut self.reports, ReportCollector::new(0));
        MergedDetection {
            reports,
            metrics,
            promoted_locations: 0,
        }
    }

    fn ensure_thread(&mut self, t: ThreadId) {
        let t = t as usize;
        while self.vcs.len() <= t {
            self.vcs.push(initial_vc());
            self.held.push(Vec::new());
            self.cs.push(FxHashMap::default());
        }
    }

    /// Apply the conditional critical-section edges for an access to
    /// `addr` under every lock the thread holds: join the release clocks
    /// of earlier conflicting sections *before* the race check, so a
    /// kept edge suppresses the pair exactly like a hard HB edge would.
    fn acquire_conflicting(&mut self, tid: ThreadId, addr: u64, is_write: bool) {
        let ti = tid as usize;
        for i in 0..self.held[ti].len() {
            let m = self.held[ti][i];
            if let Some(vc) = self.rel_w.get(&m).and_then(|per| per.get(&addr)) {
                self.vcs[ti].join(vc);
            }
            if is_write {
                if let Some(vc) = self.rel_r.get(&m).and_then(|per| per.get(&addr)) {
                    self.vcs[ti].join(vc);
                }
            }
        }
    }

    /// Record the access in every open critical section's footprint.
    fn note_cs_access(&mut self, tid: ThreadId, addr: u64, is_write: bool) {
        let ti = tid as usize;
        if self.held[ti].is_empty() {
            return;
        }
        for i in 0..self.held[ti].len() {
            let m = self.held[ti][i];
            let slot = self.cs[ti]
                .entry(m)
                .or_default()
                .accesses
                .entry(addr)
                .or_insert((false, false));
            if is_write {
                slot.0 = true;
            } else {
                slot.1 = true;
            }
        }
    }

    fn on_plain_read(&mut self, tid: ThreadId, addr: u64, pc: Pc, stack: u64) {
        self.acquire_conflicting(tid, addr, false);
        let ti = tid as usize;
        let vc = &self.vcs[ti];
        let st = self.state.entry(addr).or_default();
        self.scratch.clear();
        for (&u, e) in &st.writes {
            if u != tid && !vc.covers(Epoch::new(u, e.clock)) {
                self.scratch.push((
                    AccessSummary {
                        tid: u,
                        pc: e.pc,
                        stack: e.stack,
                        is_write: true,
                    },
                    RaceKind::WriteRead,
                ));
            }
        }
        st.reads.insert(
            tid,
            SiteEpoch {
                clock: vc.get(tid),
                pc,
                stack,
            },
        );
        self.emit(addr, tid, pc, stack, false);
        self.note_cs_access(tid, addr, false);
    }

    fn on_plain_write(&mut self, tid: ThreadId, addr: u64, pc: Pc, stack: u64) {
        self.acquire_conflicting(tid, addr, true);
        let ti = tid as usize;
        let vc = &self.vcs[ti];
        let st = self.state.entry(addr).or_default();
        self.scratch.clear();
        for (&u, e) in &st.writes {
            if u != tid && !vc.covers(Epoch::new(u, e.clock)) {
                self.scratch.push((
                    AccessSummary {
                        tid: u,
                        pc: e.pc,
                        stack: e.stack,
                        is_write: true,
                    },
                    RaceKind::WriteWrite,
                ));
            }
        }
        for (&u, e) in &st.reads {
            if u != tid && !vc.covers(Epoch::new(u, e.clock)) {
                self.scratch.push((
                    AccessSummary {
                        tid: u,
                        pc: e.pc,
                        stack: e.stack,
                        is_write: false,
                    },
                    RaceKind::ReadWrite,
                ));
            }
        }
        st.writes.insert(
            tid,
            SiteEpoch {
                clock: vc.get(tid),
                pc,
                stack,
            },
        );
        self.emit(addr, tid, pc, stack, true);
        self.note_cs_access(tid, addr, true);
    }

    /// Flush the racy-pair scratch into the collector in a canonical
    /// order (prior thread, writes before reads) so reports are
    /// byte-stable regardless of hash-map iteration order.
    fn emit(&mut self, addr: u64, tid: ThreadId, pc: Pc, stack: u64, is_write: bool) {
        let mut pairs = std::mem::take(&mut self.scratch);
        pairs.sort_by_key(|(prior, _)| (prior.tid, !prior.is_write));
        for (prior, kind) in pairs.drain(..) {
            self.reports.record(RaceReport {
                addr,
                prior,
                current: AccessSummary {
                    tid,
                    pc,
                    stack,
                    is_write,
                },
                kind,
            });
        }
        self.scratch = pairs;
    }

    fn handle(&mut self, ev: &Event) {
        match *ev {
            Event::Spawn { parent, child, .. } => {
                self.ensure_thread(parent);
                self.ensure_thread(child);
                let pvc = self.vcs[parent as usize].clone();
                let cvc = &mut self.vcs[child as usize];
                cvc.join(&pvc);
                cvc.tick(child);
                self.vcs[parent as usize].tick(parent);
            }
            Event::Join { parent, child, .. } => {
                self.ensure_thread(parent);
                self.ensure_thread(child);
                let cvc = self.vcs[child as usize].clone();
                self.vcs[parent as usize].join(&cvc);
            }
            Event::ThreadEnd { .. } => {}

            Event::Read {
                tid,
                addr,
                pc,
                stack,
                atomic,
                ..
            } => {
                self.ensure_thread(tid);
                // Machine atomics are synchronization, not data (spin-
                // tagged reads carry no special meaning here: without the
                // promotion feature they are plain reads).
                if let Some(ord) = atomic {
                    if ord.acquires() {
                        if let Some(avc) = self.atomic_vc.get(&addr) {
                            self.vcs[tid as usize].join(avc);
                        }
                    }
                    return;
                }
                self.on_plain_read(tid, addr, pc, stack);
            }
            Event::Write {
                tid,
                addr,
                pc,
                stack,
                atomic,
                ..
            } => {
                self.ensure_thread(tid);
                if let Some(ord) = atomic {
                    if ord.releases() {
                        let vc = &self.vcs[tid as usize];
                        self.atomic_vc.entry(addr).or_default().join(vc);
                        self.vcs[tid as usize].tick(tid);
                    }
                    return;
                }
                self.on_plain_write(tid, addr, pc, stack);
            }
            Event::Update { tid, addr, .. } => {
                self.ensure_thread(tid);
                // RMW: acquire + release through one clock (hard edge).
                let avc = self.atomic_vc.entry(addr).or_default();
                self.vcs[tid as usize].join(avc);
                avc.join(&self.vcs[tid as usize]);
                self.vcs[tid as usize].tick(tid);
            }
            Event::Fence { .. } => {}

            Event::MutexLock { tid, mutex, .. } => {
                self.ensure_thread(tid);
                // No unconditional acquire — the whole point. Just open
                // the critical section.
                let held = &mut self.held[tid as usize];
                if let Err(i) = held.binary_search(&mutex) {
                    held.insert(i, mutex);
                }
                self.cs[tid as usize].entry(mutex).or_default();
            }
            Event::MutexUnlock { tid, mutex, .. } => {
                self.ensure_thread(tid);
                let ti = tid as usize;
                if let Ok(i) = self.held[ti].binary_search(&mutex) {
                    self.held[ti].remove(i);
                }
                if let Some(fp) = self.cs[ti].remove(&mutex) {
                    let vc = &self.vcs[ti];
                    for (&addr, &(wrote, read)) in &fp.accesses {
                        if wrote {
                            self.rel_w
                                .entry(mutex)
                                .or_default()
                                .entry(addr)
                                .or_default()
                                .join(vc);
                        }
                        if read {
                            self.rel_r
                                .entry(mutex)
                                .or_default()
                                .entry(addr)
                                .or_default()
                                .join(vc);
                        }
                    }
                }
                self.vcs[ti].tick(tid);
            }
            Event::CondSignal { tid, cv, .. } | Event::CondBroadcast { tid, cv, .. } => {
                self.ensure_thread(tid);
                let vc = &self.vcs[tid as usize];
                self.cv_vc.entry(cv).or_default().join(vc);
                self.vcs[tid as usize].tick(tid);
            }
            Event::CondWaitReturn { tid, cv, .. } => {
                self.ensure_thread(tid);
                if let Some(cvc) = self.cv_vc.get(&cv) {
                    self.vcs[tid as usize].join(cvc);
                }
            }
            Event::BarrierEnter {
                tid, barrier, gen, ..
            } => {
                self.ensure_thread(tid);
                let vc = &self.vcs[tid as usize];
                self.barrier_vc.entry((barrier, gen)).or_default().join(vc);
                self.vcs[tid as usize].tick(tid);
            }
            Event::BarrierLeave {
                tid, barrier, gen, ..
            } => {
                self.ensure_thread(tid);
                if let Some(bvc) = self.barrier_vc.get(&(barrier, gen)) {
                    self.vcs[tid as usize].join(bvc);
                }
            }
            Event::SemPost { tid, sem, .. } => {
                self.ensure_thread(tid);
                let vc = &self.vcs[tid as usize];
                self.sem_vc.entry(sem).or_default().join(vc);
                self.vcs[tid as usize].tick(tid);
            }
            Event::SemAcquired { tid, sem, .. } => {
                self.ensure_thread(tid);
                if let Some(svc) = self.sem_vc.get(&sem) {
                    self.vcs[tid as usize].join(svc);
                }
            }

            Event::SpinEnter { .. } | Event::SpinExit { .. } | Event::Output { .. } => {}
        }
    }
}

fn initial_vc() -> VectorClock {
    let mut vc = VectorClock::new();
    vc.set(0, 1);
    vc
}

impl EventSink for SyncPreservingDetector {
    fn on_event(&mut self, ev: &Event) {
        self.events_seen += 1;
        self.handle(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DetectorConfig, MsmMode};
    use crate::RaceDetector;
    use spinrace_tir::{BlockId, FuncId};

    fn pc(n: u32) -> Pc {
        Pc::new(FuncId(0), BlockId(0), n)
    }

    fn sp() -> SyncPreservingDetector {
        SyncPreservingDetector::new(DetectorConfig::sync_preserving())
    }

    fn spawn2(d: &mut dyn EventSink) {
        d.on_event(&Event::Spawn {
            parent: 0,
            child: 1,
            pc: pc(0),
        });
        d.on_event(&Event::Spawn {
            parent: 0,
            child: 2,
            pc: pc(0),
        });
    }

    fn write(d: &mut dyn EventSink, tid: u32, addr: u64, at: u32) {
        d.on_event(&Event::Write {
            tid,
            addr,
            value: 1,
            pc: pc(at),
            stack: 0,
            atomic: None,
        });
    }

    fn read(d: &mut dyn EventSink, tid: u32, addr: u64, at: u32) {
        d.on_event(&Event::Read {
            tid,
            addr,
            value: 0,
            pc: pc(at),
            stack: 0,
            atomic: None,
            spin: None,
        });
    }

    fn lock(d: &mut dyn EventSink, tid: u32, mutex: u64, at: u32) {
        d.on_event(&Event::MutexLock {
            tid,
            mutex,
            pc: pc(at),
        });
    }

    fn unlock(d: &mut dyn EventSink, tid: u32, mutex: u64, at: u32) {
        d.on_event(&Event::MutexUnlock {
            tid,
            mutex,
            pc: pc(at),
        });
    }

    /// Writes straddling two *non-conflicting* critical sections on the
    /// same lock: HB orders them through the lock edge; prediction drops
    /// the edge and reports the reorder-only race.
    #[test]
    fn unrelated_critical_sections_do_not_order() {
        let mut d = sp();
        spawn2(&mut d);
        let (x, mu, s1, s2) = (0x1000, 0x2000, 0x1001, 0x1002);
        write(&mut d, 1, x, 1);
        lock(&mut d, 1, mu, 2);
        write(&mut d, 1, s1, 3);
        unlock(&mut d, 1, mu, 4);
        lock(&mut d, 2, mu, 5);
        write(&mut d, 2, s2, 6);
        unlock(&mut d, 2, mu, 7);
        write(&mut d, 2, x, 8);
        assert_eq!(d.racy_contexts(), 1);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::WriteWrite);

        // The HB lineup on the same stream: silent.
        for cfg in [
            DetectorConfig::helgrind_lib(MsmMode::Short),
            DetectorConfig::drd(),
        ] {
            let mut hb = RaceDetector::new(cfg);
            spawn2(&mut hb);
            write(&mut hb, 1, x, 1);
            lock(&mut hb, 1, mu, 2);
            write(&mut hb, 1, s1, 3);
            unlock(&mut hb, 1, mu, 4);
            lock(&mut hb, 2, mu, 5);
            write(&mut hb, 2, s2, 6);
            unlock(&mut hb, 2, mu, 7);
            write(&mut hb, 2, x, 8);
            assert_eq!(hb.racy_contexts(), 0);
        }
    }

    /// Conflicting critical sections keep their edge: same shape, but
    /// both sections write one shared word — clean under prediction too.
    #[test]
    fn conflicting_critical_sections_keep_the_edge() {
        let mut d = sp();
        spawn2(&mut d);
        let (x, mu, c) = (0x1000, 0x2000, 0x1003);
        write(&mut d, 1, x, 1);
        lock(&mut d, 1, mu, 2);
        write(&mut d, 1, c, 3);
        unlock(&mut d, 1, mu, 4);
        lock(&mut d, 2, mu, 5);
        write(&mut d, 2, c, 6);
        unlock(&mut d, 2, mu, 7);
        write(&mut d, 2, x, 8);
        assert_eq!(d.racy_contexts(), 0, "conflict on c keeps rel→acq");
    }

    /// The edge is also kept when the later section *reads* what the
    /// earlier one wrote (write→read conflict), and the acquired clock
    /// then orders the trailing access.
    #[test]
    fn write_read_conflict_keeps_the_edge() {
        let mut d = sp();
        spawn2(&mut d);
        let (x, mu, c) = (0x1000, 0x2000, 0x1003);
        lock(&mut d, 1, mu, 1);
        write(&mut d, 1, c, 2);
        write(&mut d, 1, x, 3);
        unlock(&mut d, 1, mu, 4);
        lock(&mut d, 2, mu, 5);
        read(&mut d, 2, c, 6);
        unlock(&mut d, 2, mu, 7);
        read(&mut d, 2, x, 8);
        // x was written inside T1's section; T2 read c inside its own
        // section (conflict) — the kept edge covers the write to x.
        assert_eq!(d.racy_contexts(), 0);
    }

    /// Publication after an unordered release: the publishing write sits
    /// inside the critical section, the consuming read after a
    /// non-conflicting section on the same lock — predicted, HB-silent.
    #[test]
    fn publish_after_unordered_release_is_predicted() {
        let mut d = sp();
        spawn2(&mut d);
        let (x, mu, s2) = (0x1000, 0x2000, 0x1002);
        lock(&mut d, 1, mu, 1);
        write(&mut d, 1, x, 2);
        unlock(&mut d, 1, mu, 3);
        lock(&mut d, 2, mu, 4);
        write(&mut d, 2, s2, 5);
        unlock(&mut d, 2, mu, 6);
        read(&mut d, 2, x, 7);
        assert_eq!(d.racy_contexts(), 1);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::WriteRead);
    }

    /// Hard edges are never dropped: spawn/join, semaphores, barriers,
    /// condvars, atomics all order exactly as in the HB detector.
    #[test]
    fn hard_edges_still_order() {
        let mut d = sp();
        write(&mut d, 0, 0x1000, 1);
        d.on_event(&Event::Spawn {
            parent: 0,
            child: 1,
            pc: pc(0),
        });
        read(&mut d, 1, 0x1000, 2);
        d.on_event(&Event::SemPost {
            tid: 1,
            sem: 0x3000,
            pc: pc(3),
        });
        write(&mut d, 1, 0x1001, 4);
        d.on_event(&Event::Spawn {
            parent: 0,
            child: 2,
            pc: pc(0),
        });
        d.on_event(&Event::SemAcquired {
            tid: 2,
            sem: 0x3000,
            pc: pc(5),
        });
        // Not ordered: the sem edge was posted before the write.
        write(&mut d, 2, 0x1001, 6);
        assert_eq!(d.racy_contexts(), 1, "post precedes write: still racy");
        let mut clean = sp();
        spawn2(&mut clean);
        write(&mut clean, 1, 0x1001, 1);
        clean.on_event(&Event::SemPost {
            tid: 1,
            sem: 0x3000,
            pc: pc(2),
        });
        clean.on_event(&Event::SemAcquired {
            tid: 2,
            sem: 0x3000,
            pc: pc(3),
        });
        write(&mut clean, 2, 0x1001, 4);
        assert_eq!(clean.racy_contexts(), 0);
    }

    /// Superset of HB on an unordered pair: everything DRD reports, the
    /// predictive pass reports too (dropping edges can only unorder).
    #[test]
    fn plain_hb_races_still_reported() {
        let mut d = sp();
        spawn2(&mut d);
        write(&mut d, 1, 0x1000, 1);
        write(&mut d, 2, 0x1000, 2);
        read(&mut d, 1, 0x1000, 3);
        assert!(d.racy_contexts() >= 2);
    }

    #[test]
    fn context_cap_saturates() {
        let mut d = SyncPreservingDetector::new(DetectorConfig::sync_preserving().with_cap(5));
        spawn2(&mut d);
        for i in 0..20 {
            write(&mut d, 1, 0x1000 + i, i as u32);
            write(&mut d, 2, 0x1000 + i, 100 + i as u32);
        }
        assert_eq!(d.racy_contexts(), 5);
        assert!(d.reports().dropped() > 0);
    }

    #[test]
    fn metrics_account_conflict_maps() {
        let mut d = sp();
        spawn2(&mut d);
        lock(&mut d, 1, 0x2000, 1);
        write(&mut d, 1, 0x1000, 2);
        read(&mut d, 1, 0x1001, 3);
        unlock(&mut d, 1, 0x2000, 4);
        let m = d.metrics();
        assert!(m.lib_sync_bytes > 0, "rel maps populated");
        assert!(m.shadow_bytes > 0);
        assert_eq!(m.lockset_bytes, 0);
        assert_eq!(m.spin_sync_bytes, 0);
        assert!(m.total() > 0);
    }
}
