//! Vector clocks and epochs — the happens-before machinery.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A vector clock: component `i` counts release points of thread `i`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// The zero clock.
    pub fn new() -> VectorClock {
        VectorClock(Vec::new())
    }

    /// Component for thread `t` (0 when never touched).
    pub fn get(&self, t: u32) -> u32 {
        self.0.get(t as usize).copied().unwrap_or(0)
    }

    /// Set component `t` to `v` (growing as needed).
    pub fn set(&mut self, t: u32, v: u32) {
        let t = t as usize;
        if t >= self.0.len() {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Increment component `t` by one.
    pub fn tick(&mut self, t: u32) {
        let cur = self.get(t);
        self.set(t, cur + 1);
    }

    /// Pointwise maximum (`self ⊔= other`).
    pub fn join(&mut self, other: &VectorClock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if v > self.0[i] {
                self.0[i] = v;
            }
        }
    }

    /// `self ≤ other` pointwise (the happens-before order on clocks).
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.get(i as u32))
    }

    /// Does the epoch `e` happen-before (or equal) this clock's view?
    pub fn covers(&self, e: Epoch) -> bool {
        e.clock <= self.get(e.tid)
    }

    /// Number of stored components (memory metrics).
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// Approximate heap bytes (memory metrics).
    pub fn approx_bytes(&self) -> usize {
        self.0.capacity() * std::mem::size_of::<u32>()
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

/// A scalar timestamp: thread `tid` at its local clock `clock`. FastTrack's
/// compact representation of "last access".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Epoch {
    /// Owning thread.
    pub tid: u32,
    /// That thread's component at the time of the event.
    pub clock: u32,
}

impl Epoch {
    /// Build an epoch.
    pub fn new(tid: u32, clock: u32) -> Epoch {
        Epoch { tid, clock }
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn leq_and_covers() {
        let mut a = VectorClock::new();
        a.set(0, 1);
        let mut b = VectorClock::new();
        b.set(0, 2);
        b.set(1, 1);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(b.covers(Epoch::new(0, 2)));
        assert!(!b.covers(Epoch::new(0, 3)));
        assert!(b.covers(Epoch::new(5, 0)), "zero clock always covered");
    }

    #[test]
    fn tick_increments() {
        let mut a = VectorClock::new();
        a.tick(3);
        a.tick(3);
        assert_eq!(a.get(3), 2);
        assert_eq!(a.get(0), 0);
    }

    proptest::proptest! {
        #[test]
        fn join_commutative(xs in proptest::collection::vec(0u32..100, 0..6),
                            ys in proptest::collection::vec(0u32..100, 0..6)) {
            let a = VectorClock(xs);
            let b = VectorClock(ys);
            let mut ab = a.clone(); ab.join(&b);
            let mut ba = b.clone(); ba.join(&a);
            // equal as functions (compare via get over a shared width)
            for i in 0..8u32 {
                proptest::prop_assert_eq!(ab.get(i), ba.get(i));
            }
        }

        #[test]
        fn join_associative(xs in proptest::collection::vec(0u32..100, 0..6),
                            ys in proptest::collection::vec(0u32..100, 0..6),
                            zs in proptest::collection::vec(0u32..100, 0..6)) {
            let a = VectorClock(xs);
            let b = VectorClock(ys);
            let c = VectorClock(zs);
            let mut ab_c = a.clone(); ab_c.join(&b); ab_c.join(&c);
            let mut a_bc = b.clone(); a_bc.join(&c); a_bc.join(&a);
            for i in 0..8u32 {
                proptest::prop_assert_eq!(ab_c.get(i), a_bc.get(i));
            }
        }

        #[test]
        fn join_idempotent_and_monotone(xs in proptest::collection::vec(0u32..100, 0..6),
                                        ys in proptest::collection::vec(0u32..100, 0..6)) {
            let a = VectorClock(xs);
            let b = VectorClock(ys);
            let mut aa = a.clone(); aa.join(&a);
            for i in 0..8u32 {
                proptest::prop_assert_eq!(aa.get(i), a.get(i));
            }
            let mut ab = a.clone(); ab.join(&b);
            proptest::prop_assert!(a.leq(&ab) && b.leq(&ab));
        }

        #[test]
        fn leq_is_a_partial_order(xs in proptest::collection::vec(0u32..20, 0..5),
                                  ys in proptest::collection::vec(0u32..20, 0..5)) {
            let a = VectorClock(xs);
            let b = VectorClock(ys);
            // reflexive
            proptest::prop_assert!(a.leq(&a));
            // antisymmetric up to function equality
            if a.leq(&b) && b.leq(&a) {
                for i in 0..8u32 {
                    proptest::prop_assert_eq!(a.get(i), b.get(i));
                }
            }
        }
    }
}
