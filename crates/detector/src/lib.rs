//! # SpinRace detector — the runtime phase
//!
//! Dynamic race detection over the VM's event stream, reproducing the
//! detector landscape of *Jannesari & Tichy (IPDPS 2010)*:
//!
//! * **Helgrind+ style hybrid** ([`DetectorKind::HelgrindPlus`]) — vector
//!   clock happens-before plus an Eraser-style lock-discipline check, with
//!   the short-/long-running memory state machine distinction of the
//!   Helgrind+ line (long mode needs a second confirmation per location
//!   before reporting, trading first-iteration sensitivity for fewer false
//!   positives);
//! * **DRD style pure happens-before** ([`DetectorKind::Drd`]) — no
//!   lockset stage, but machine-level atomics (CAS/RMW, release/acquire
//!   loads and stores) induce happens-before edges;
//! * the paper's **spin-loop HB augmentation** (`spin: true`) — tagged
//!   spin-condition loads *promote* their addresses to synchronization
//!   locations; writes to promoted locations release the writer's clock
//!   into a per-location vector clock, and a [`spinrace_vm::Event::SpinExit`]
//!   acquires the clocks of the final iteration's reads, installing the
//!   happens-before edge from the counterpart write to the loop exit.
//!   Accesses to promoted locations are exempt from race checking, which
//!   suppresses the paper's *synchronization races*; the acquired edge
//!   removes the *apparent races* on the data the flag guards. Atomic
//!   read-modify-writes also promote (they are the counterpart-write
//!   pattern of arrival counters), which the library-knowledge-only
//!   configuration deliberately lacks.
//!
//! Race reports are deduplicated into **racy contexts** — pairs of static
//! instruction locations — and capped (default 1000, Helgrind's error
//! cap, visible in the paper's PARSEC tables).
//!
//! Alongside the witnessed-interleaving lineup, the crate provides a
//! **sync-preserving predictive detector**
//! ([`DetectorKind::SyncPreserving`], [`predict::SyncPreservingDetector`])
//! that reports races in *correct reorderings* of a recorded trace: mutex
//! release→acquire edges are kept only between critical sections that
//! conflict on the accessed variable, while program-structure edges
//! (spawn/join, condvars, barriers, semaphores, machine atomics) always
//! hold. Since it only ever drops edges relative to happens-before, its
//! race set is a superset of the HB lineup's on the same stream.
//! [`AnyDetector`] dispatches between the two families behind one
//! [`spinrace_vm::EventSink`] surface.

pub mod any;
pub mod config;
pub mod detector;
pub mod lockset;
pub mod metrics;
pub mod predict;
pub mod reference;
pub mod report;
pub mod shadow;
pub mod sharded;
pub mod vc;

pub use any::AnyDetector;
pub use config::{DetectorConfig, DetectorKind, MsmMode};
pub use detector::RaceDetector;
pub use lockset::{LocksetId, LocksetTable};
pub use metrics::DetectorMetrics;
pub use predict::SyncPreservingDetector;
pub use reference::ReferenceDetector;
pub use report::{AccessSummary, RaceKind, RaceReport, ReportCollector};
pub use shadow::{shard_of, ExtractedShard, NUM_SHARDS};
pub use sharded::{
    compute_promotion_seeds, event_route, merge_fragments, shard_occupancy, try_merge_fragments,
    EventRoute, MergedDetection, PromotionSeeds, Schedule, SchedulePlan, ShardHandoff, ShardSpec,
    ShardTransfer, WorkerFragment,
};
pub use vc::{Epoch, VectorClock};
