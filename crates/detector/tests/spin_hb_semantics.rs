//! End-to-end semantics of the spin-HB augmentation: soundness (real
//! races survive the suppression) and completeness (the installed edges
//! are transitive enough for barriers and lock chains).

use spinrace_detector::{DetectorConfig, MsmMode, RaceDetector};
use spinrace_spinfind::SpinFinder;
use spinrace_synclib::lower_to_spinlib;
use spinrace_tir::{Module, ModuleBuilder};
use spinrace_vm::{run_module, VmConfig};

fn analyze(m: &Module, cfg: DetectorConfig, seed: Option<u64>) -> RaceDetector {
    let mut m = m.clone();
    let _ = SpinFinder::default().instrument(&mut m);
    let mut det = RaceDetector::new(cfg);
    let vm_cfg = match seed {
        Some(s) => VmConfig::random(s),
        None => VmConfig::round_robin(),
    };
    run_module(&m, vm_cfg, &mut det).expect("run");
    det
}

fn spin_cfg() -> DetectorConfig {
    DetectorConfig::helgrind_lib_spin(MsmMode::Short)
}

/// BROKEN flag protocol: the flag is raised *before* the data write.
/// The spin suppression must NOT hide this real race: the data write
/// happens after the release point, so its epoch exceeds what the loop
/// exit acquires.
#[test]
fn early_flag_bug_is_still_caught() {
    let mut mb = ModuleBuilder::new("early-flag");
    let flag = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag.at(0));
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(waiter, 0);
        f.store(flag.at(0), 1); // BUG: flag before data
        for _ in 0..6 {
            f.nop(); // give the waiter room to wake and read early
        }
        f.store(data.at(0), 42);
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    // Under at least one schedule the reader's data access is unordered
    // with the late data write and must be reported despite the spin
    // machinery treating `flag` as synchronization.
    let mut caught = false;
    for seed in 0..20 {
        let det = analyze(&m, spin_cfg(), Some(seed));
        let data_addr = Module::GLOBAL_BASE + 1;
        if det.reports().has_race_on(data_addr) {
            caught = true;
            break;
        }
    }
    assert!(caught, "the early-flag bug must be detectable");
}

/// Correct protocol for contrast: flag raised after the data write is
/// clean under every seed.
#[test]
fn correct_flag_protocol_is_clean_under_all_seeds() {
    let mut mb = ModuleBuilder::new("late-flag");
    let flag = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag.at(0));
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(waiter, 0);
        f.store(data.at(0), 42);
        f.store(flag.at(0), 1);
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    for seed in 0..20 {
        let det = analyze(&m, spin_cfg(), Some(seed));
        assert_eq!(det.racy_contexts(), 0, "seed {seed}");
    }
}

/// The lowered barrier provides *all-to-all* ordering: every thread's
/// pre-barrier writes are visible race-free to every other thread after
/// the barrier (requires the RMW arrival chain + generation release).
#[test]
fn lowered_barrier_gives_all_to_all_ordering() {
    let mut mb = ModuleBuilder::new("spin-barrier-all2all");
    let bar = mb.global("bar", 3);
    let slots = mb.global("slots", 4);
    let sums = mb.global("sums", 4);
    let worker = mb.function("worker", 1, |f| {
        let id = f.param(0);
        let v = f.add(id, 7);
        f.store(slots.idx(id), v);
        f.barrier_wait(bar.at(0));
        let mut total = f.const_(0);
        for i in 0..4 {
            let s = f.load(slots.at(i));
            total = f.add(total, s);
        }
        f.store(sums.idx(id), total);
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), 4);
        let tids: Vec<_> = (0..4).map(|i| f.spawn(worker, i)).collect();
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let low = lower_to_spinlib(&m).unwrap();
    for seed in 0..10 {
        let det = analyze(
            &low,
            DetectorConfig::helgrind_nolib_spin(MsmMode::Short),
            Some(seed),
        );
        assert_eq!(
            det.racy_contexts(),
            0,
            "seed {seed}: lowered barrier must order all-to-all"
        );
    }
}

/// Lock-chain transitivity through the lowered mutex: A writes under the
/// lock, B bumps under the lock, C reads under the lock — C must be
/// ordered after A's write through B's critical section.
#[test]
fn lowered_mutex_chains_transitively() {
    let mut mb = ModuleBuilder::new("spin-mutex-chain");
    let mu = mb.global("mu", 1);
    let x = mb.global("x", 1);
    let w = mb.function("w", 1, |f| {
        f.lock(mu.at(0));
        let v = f.load(x.at(0));
        let v2 = f.add(v, 1);
        f.store(x.at(0), v2);
        f.unlock(mu.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        let a = f.spawn(w, 0);
        let b = f.spawn(w, 1);
        let c = f.spawn(w, 2);
        f.join(a);
        f.join(b);
        f.join(c);
        let v = f.load(x.at(0));
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let low = lower_to_spinlib(&m).unwrap();
    for seed in 0..15 {
        let det = analyze(
            &low,
            DetectorConfig::helgrind_nolib_spin(MsmMode::Short),
            Some(seed),
        );
        assert_eq!(det.racy_contexts(), 0, "seed {seed}");
    }
}

/// Promotion after a pre-existing write uses the partial (writer-epoch)
/// edge: the writer's *own* earlier stores are still ordered.
#[test]
fn partial_edge_orders_writers_own_history() {
    let mut mb = ModuleBuilder::new("partial-edge");
    let flag = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let waiter = mb.function("waiter", 1, |f| {
        // Delay so the counterpart write certainly precedes the first
        // spin read under round-robin (promotion happens after it).
        for _ in 0..12 {
            f.nop();
        }
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag.at(0));
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(waiter, 0);
        f.store(data.at(0), 5);
        f.store(flag.at(0), 1);
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let det = analyze(&m, spin_cfg(), None);
    assert_eq!(
        det.racy_contexts(),
        0,
        "writer-epoch seeding must cover the writer's earlier stores"
    );
}

/// Suppression is not global: a second, unrelated race in a program with
/// spin sync is still reported.
#[test]
fn unrelated_race_next_to_spin_sync_is_reported() {
    let mut mb = ModuleBuilder::new("spin-plus-race");
    let flag = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let victim = mb.global("victim", 1);
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag.at(0));
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        let _ = d;
        f.store(victim.at(0), 1); // unsynchronized with main's write below
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(waiter, 0);
        f.store(data.at(0), 1);
        f.store(flag.at(0), 1);
        f.store(victim.at(0), 2); // races with the waiter's store
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let victim_addr = Module::GLOBAL_BASE + 2;
    let mut caught = false;
    for seed in 0..20 {
        let det = analyze(&m, spin_cfg(), Some(seed));
        if det.reports().has_race_on(victim_addr) {
            caught = true;
        }
        // and never a false positive on data/flag
        assert!(!det.reports().has_race_on(Module::GLOBAL_BASE));
        assert!(!det.reports().has_race_on(Module::GLOBAL_BASE + 1));
    }
    assert!(caught, "the victim race must surface under some schedule");
}

/// The obscure library flavour changes detectability, not semantics:
/// same outputs, more contexts.
#[test]
fn obscure_lowering_is_semantically_equivalent_but_noisier() {
    let mut mb = ModuleBuilder::new("cv-prog");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let ready = mb.global("ready", 1);
    let data = mb.global("data", 1);
    let consumer = mb.function("consumer", 1, |f| {
        let check = f.new_block();
        let sleep = f.new_block();
        let done = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let r = f.load(ready.at(0));
        f.branch(r, done, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.unlock(mu.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(consumer, 0);
        f.lock(mu.at(0));
        f.store(data.at(0), 11);
        f.store(ready.at(0), 1);
        f.signal(cv.at(0));
        f.unlock(mu.at(0));
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();

    let textbook = lower_to_spinlib(&m).unwrap();
    let obscure = spinrace_synclib::lower_to_spinlib_obscure(&m).unwrap();
    let run_one = |module: &Module| {
        let mut module = module.clone();
        let _ = SpinFinder::default().instrument(&mut module);
        let mut det = RaceDetector::new(DetectorConfig::helgrind_nolib_spin(MsmMode::Short));
        let summary = run_module(&module, VmConfig::round_robin(), &mut det).expect("run");
        (
            summary.outputs.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            det.racy_contexts(),
        )
    };
    let (out_t, ctx_t) = run_one(&textbook);
    let (out_o, ctx_o) = run_one(&obscure);
    assert_eq!(out_t, vec![11]);
    assert_eq!(out_o, vec![11], "obscure internals compute the same result");
    assert_eq!(ctx_t, 0, "textbook primitives are fully detectable");
    assert!(
        ctx_o > 0,
        "obscure condvar internals defeat the patterns (got {ctx_o})"
    );
}
