//! The generator families: deterministic TIR module builders with
//! computable ground truth.
//!
//! Every family follows the same contract:
//!
//! * **Scaffolding is universally clean.** All synchronization is built
//!   from constructs every tool in the lineup accepts — spawn/join,
//!   mutexes, counting semaphores, barriers, and pre-spawn publication
//!   (writes by `main` before the first `spawn`). No plain cross-thread
//!   flag handoff, no bare atomics: those are exactly the ad-hoc shapes
//!   the paper's `lib`-only tools flood on, so they cannot appear in a
//!   module whose oracle says "0 contexts under *every* tool".
//! * **Seeded races are surgical.** `spec.races > 0` injects dedicated
//!   one-word victim globals (`race0`, `race1`, …), each written exactly
//!   once by each of two distinct workers, as the *first* instructions of
//!   the worker bodies — before any synchronization, so no happens-before
//!   path can order the pair, and with one static store site per thread,
//!   so each victim yields exactly one racy context.
//! * **Workers spawn in index order.** Worker `i` is dynamic thread
//!   `i + 1` (main is 0), which is what makes [`ExpectedRace`] thread
//!   identities computable at generation time.
//! * **Determinism.** All randomness (victim pairing, LCG constants,
//!   initial array contents) comes from the vendored seeded `rand`; the
//!   same spec always builds a fingerprint-identical module.

use crate::{ExpectedRace, Family, Oracle, Workload, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinrace_synclib::patterns::spin_until_nonzero;
use spinrace_tir::{BinOp, FunctionBuilder, GlobalRef, ModuleBuilder, Reg};

/// Build `spec`'s module and oracle.
pub fn build(spec: &WorkloadSpec) -> Workload {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5eed_ab1e_0bad_c0de);
    let workers = spec.worker_threads() as usize;
    let mut mb = ModuleBuilder::new(spec.name());
    let oracle = if spec.family.reorder_only() {
        reorder(&mut mb, spec, &mut rng, spec.family == Family::Publish)
    } else {
        let seeds = VictimPlan::plan(&mut mb, spec, workers, &mut rng);
        match spec.family {
            Family::Ring => ring(&mut mb, spec, &seeds, &mut rng),
            Family::SpinFlag => spinflag(&mut mb, spec, &seeds, &mut rng),
            Family::Barrier => barrier(&mut mb, spec, &seeds, &mut rng),
            Family::Zipf => zipf(&mut mb, spec, &seeds, &mut rng),
            Family::Fanout => fanout(&mut mb, spec, &seeds, &mut rng),
            Family::Straddle | Family::Publish => unreachable!("reorder families handled above"),
        }
        seeds.oracle()
    };
    Workload {
        spec: *spec,
        oracle,
        module: mb.finish().unwrap_or_else(|e| {
            panic!("workload generator built an invalid module for {spec:?}: {e}")
        }),
    }
}

/// The victim globals and their thread assignments.
struct VictimPlan {
    /// `victims[w]` — the `(global, value)` stores worker `w` performs
    /// before its first synchronization operation.
    preludes: Vec<Vec<(GlobalRef, i64)>>,
    /// The ground truth those stores imply.
    expected: Vec<ExpectedRace>,
}

impl VictimPlan {
    fn plan(
        mb: &mut ModuleBuilder,
        spec: &WorkloadSpec,
        workers: usize,
        rng: &mut StdRng,
    ) -> VictimPlan {
        let mut preludes = vec![Vec::new(); workers];
        let mut expected = Vec::new();
        for k in 0..spec.races {
            let g = mb.global(&format!("race{k}"), 1);
            // Two distinct workers; the second drawn from the remaining
            // indices so a == b is impossible.
            let a = rng.gen_range(0..workers);
            let mut b = rng.gen_range(0..workers - 1);
            if b >= a {
                b += 1;
            }
            preludes[a].push((g, k as i64 + 1));
            preludes[b].push((g, -(k as i64 + 1)));
            expected.push(ExpectedRace::new(
                format!("race{k}"),
                a as u32 + 1,
                b as u32 + 1,
            ));
        }
        VictimPlan { preludes, expected }
    }

    /// Emit worker `w`'s victim stores (call first in the body).
    fn emit(&self, f: &mut FunctionBuilder, w: usize) {
        for &(g, v) in &self.preludes[w] {
            f.store(g.at(0), v);
        }
    }

    fn oracle(&self) -> Oracle {
        if self.expected.is_empty() {
            Oracle::RaceFree
        } else {
            let mut e = self.expected.clone();
            e.sort();
            Oracle::SeededRaces(e)
        }
    }
}

/// `for i in 0..n { body(i) }` as real TIR blocks (head/body/exit), so
/// long streams come from compact modules instead of unrolling. The exit
/// condition compares a register counter — no load feeds it, so the spin
/// finder never mistakes compute loops for waiting loops.
fn counted_loop(f: &mut FunctionBuilder, n: i64, body: impl FnOnce(&mut FunctionBuilder, Reg)) {
    let i = f.const_(0);
    let head = f.new_block();
    let body_b = f.new_block();
    let exit = f.new_block();
    f.jump(head);
    f.switch_to(head);
    let more = f.lt(i, n);
    f.branch(more, body_b, exit);
    f.switch_to(body_b);
    body(f, i);
    f.bin_into(i, BinOp::Add, i, 1);
    f.jump(head);
    f.switch_to(exit);
}

/// Producer–consumer rings: one semaphore-paced ring buffer per
/// producer/consumer pair. Slot writes and reads are ordered by the
/// `full`/`empty` semaphore edges (and slot *reuse* by the round trip),
/// so the streams exercise sem HB bookkeeping and shadow-cell churn.
fn ring(mb: &mut ModuleBuilder, spec: &WorkloadSpec, seeds: &VictimPlan, rng: &mut StdRng) {
    let pairs = spec.worker_threads() as usize / 2;
    let cap = spec.addr_space.clamp(1, 1 << 20) as i64;
    // Producer events per item: SemAcquired + Write + SemPost = 3.
    let items = (spec.events_per_thread / 3).max(1) as i64;
    let mut funcs = Vec::new();
    for p in 0..pairs {
        let ring_g = mb.global(&format!("ring{p}"), cap as u64);
        let empty = mb.global(&format!("empty{p}"), 1);
        let full = mb.global(&format!("full{p}"), 1);
        let out = mb.global(&format!("out{p}"), 1);
        let base = rng.gen_range(0i64..1000);
        let producer = mb.function(&format!("producer{p}"), 1, |f| {
            seeds.emit(f, 2 * p);
            counted_loop(f, items, |f, i| {
                f.sem_wait(empty.at(0));
                let slot = f.bin(BinOp::Rem, i, cap);
                let v = f.add(i, base);
                f.store(ring_g.idx(slot), v);
                f.sem_post(full.at(0));
            });
            f.ret(None);
        });
        let consumer = mb.function(&format!("consumer{p}"), 1, |f| {
            seeds.emit(f, 2 * p + 1);
            let sum = f.const_(0);
            counted_loop(f, items, |f, i| {
                f.sem_wait(full.at(0));
                let slot = f.bin(BinOp::Rem, i, cap);
                let v = f.load(ring_g.idx(slot));
                f.bin_into(sum, BinOp::Add, sum, v);
                f.sem_post(empty.at(0));
            });
            f.store(out.at(0), sum);
            f.ret(None);
        });
        funcs.push((producer, consumer, empty, full));
    }
    mb.entry("main", |f| {
        for &(_, _, empty, full) in &funcs {
            f.sem_init(empty.at(0), cap);
            f.sem_init(full.at(0), 0);
        }
        let mut tids = Vec::new();
        for &(producer, consumer, _, _) in &funcs {
            tids.push(f.spawn(producer, 0));
            tids.push(f.spawn(consumer, 0));
        }
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
}

/// Spin-flag publication plus a mutex-guarded double-checked stage.
///
/// Stage 1 is the paper's canonical shape with the handoff made
/// universally clean: `main` publishes `data` and sets `flag` *before*
/// spawning, so every waiter's spinning read loop (instrumented and
/// promoted under `+spin`, with `main`'s store as the promotion seed)
/// exits on its first evaluation and the data reads are ordered by the
/// spawn edge. Stage 2 is double-checked publication done with a lock —
/// worker 0 publishes `payload` and `ready` under `mu`; everyone else
/// spin-waits on `ready` *inside* the lock (a waiting loop the spin
/// criteria correctly reject as side-effecting) and then reads `payload`
/// under the same lock.
fn spinflag(mb: &mut ModuleBuilder, spec: &WorkloadSpec, seeds: &VictimPlan, rng: &mut StdRng) {
    let workers = spec.worker_threads() as usize;
    let dsize = spec.addr_space.clamp(1, 64) as i64;
    let reads = (spec.events_per_thread.saturating_sub(10) / 2).max(1) as i64;
    let flag = mb.global("flag", 1);
    let data = mb.global("data", dsize as u64);
    let mu = mb.global("mu", 1);
    let ready = mb.global("ready", 1);
    let payload = mb.global("payload", 1);
    let out = mb.global("out", workers as u64);
    let payload_v = rng.gen_range(1i64..1_000_000);
    let inits: Vec<i64> = (0..dsize).map(|_| rng.gen_range(0i64..1000)).collect();
    let mut funcs = Vec::new();
    for w in 0..workers {
        funcs.push(mb.function(&format!("waiter{w}"), 1, |f| {
            seeds.emit(f, w);
            spin_until_nonzero(f, flag.at(0));
            let sum = f.const_(0);
            counted_loop(f, reads, |f, i| {
                let j = f.bin(BinOp::Rem, i, dsize);
                let v = f.load(data.idx(j));
                f.bin_into(sum, BinOp::Add, sum, v);
                f.store(out.at(w as i64), sum);
            });
            if w == 0 {
                f.lock(mu.at(0));
                f.store(payload.at(0), payload_v);
                f.store(ready.at(0), 1);
                f.unlock(mu.at(0));
            } else {
                let head = f.new_block();
                let done = f.new_block();
                f.jump(head);
                f.switch_to(head);
                f.lock(mu.at(0));
                let r = f.load(ready.at(0));
                f.unlock(mu.at(0));
                f.branch(r, done, head);
                f.switch_to(done);
                f.lock(mu.at(0));
                let pv = f.load(payload.at(0));
                f.unlock(mu.at(0));
                f.bin_into(sum, BinOp::Add, sum, pv);
                f.store(out.at(w as i64), sum);
            }
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        for (j, &v) in inits.iter().enumerate() {
            f.store(data.at(j as i64), v);
        }
        f.store(flag.at(0), 1);
        let tids: Vec<_> = funcs.iter().map(|&w| f.spawn(w, 0)).collect();
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
}

/// Barrier-phased compute: every phase, each worker reads its right
/// neighbour's stripe, crosses the barrier, rewrites its own stripe, and
/// crosses again — all cross-thread pairs are separated by a barrier
/// generation, so arbitrarily long streams stay race-free while the
/// barrier's generation bookkeeping and phase-crossing vector clocks
/// churn continuously.
fn barrier(mb: &mut ModuleBuilder, spec: &WorkloadSpec, seeds: &VictimPlan, rng: &mut StdRng) {
    let workers = spec.worker_threads() as usize;
    let stripe = (spec.addr_space as usize / workers).clamp(1, 32);
    // Events per phase: stripe reads + stripe writes + 2 barriers
    // (enter + leave each).
    let phases = (spec.events_per_thread as usize / (2 * stripe + 4)).max(1) as i64;
    let bar = mb.global("bar", 3);
    let cells = mb.global("cells", (workers * stripe) as u64);
    let out = mb.global("out", workers as u64);
    let salt = rng.gen_range(1i64..100);
    let mut funcs = Vec::new();
    for w in 0..workers {
        let own = (w * stripe) as i64;
        let neigh = (((w + 1) % workers) * stripe) as i64;
        funcs.push(mb.function(&format!("phase_worker{w}"), 1, |f| {
            seeds.emit(f, w);
            let sum = f.const_(salt + w as i64);
            counted_loop(f, phases, |f, _i| {
                for j in 0..stripe as i64 {
                    let v = f.load(cells.at(neigh + j));
                    f.bin_into(sum, BinOp::Add, sum, v);
                }
                f.barrier_wait(bar.at(0));
                for j in 0..stripe as i64 {
                    let v = f.add(sum, j);
                    f.store(cells.at(own + j), v);
                }
                f.barrier_wait(bar.at(0));
            });
            f.store(out.at(w as i64), sum);
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), workers as i64);
        let tids: Vec<_> = funcs.iter().map(|&w| f.spawn(w, 0)).collect();
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
}

/// The 31-bit LCG constants the zipf/fanout workers run *inside TIR*
/// (glibc's venerable `rand`): compact modules, arbitrarily long streams.
const LCG_MUL: i64 = 1_103_515_245;
const LCG_ADD: i64 = 12_345;
const LCG_MASK: i64 = 0x7FFF_FFFF;

/// Zipf-skewed read streams over a shared read-only table. Each worker
/// runs an in-TIR LCG and maps the uniform sample through `spec.skew`
/// squaring rounds (u ← u²/2¹⁶ biases hard toward low indices), so the
/// hot pages — and therefore the static shadow shards — see most of the
/// traffic. The table is never written (contents come from the global
/// initializer), every worker reads it concurrently (driving `ReadState`
/// promotion), and each worker's accumulator write goes to its own slot.
fn zipf(mb: &mut ModuleBuilder, spec: &WorkloadSpec, seeds: &VictimPlan, rng: &mut StdRng) {
    let workers = spec.worker_threads() as usize;
    let n = spec.addr_space.max(8) as i64;
    let iters = (spec.events_per_thread / 2).max(1) as i64;
    let init: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..1 << 20)).collect();
    let table = mb.global_init("table", n as u64, init);
    let acc = mb.global("acc", workers as u64);
    let lcg_seeds: Vec<i64> = (0..workers)
        .map(|_| rng.gen_range(1i64..LCG_MASK))
        .collect();
    let skew = spec.skew.min(4);
    let mut funcs = Vec::new();
    for (w, &seed0) in lcg_seeds.iter().enumerate() {
        funcs.push(mb.function(&format!("zipf_worker{w}"), 1, |f| {
            seeds.emit(f, w);
            let state = f.const_(seed0);
            let sum = f.const_(0);
            counted_loop(f, iters, |f, _i| {
                f.bin_into(state, BinOp::Mul, state, LCG_MUL);
                f.bin_into(state, BinOp::Add, state, LCG_ADD);
                f.bin_into(state, BinOp::And, state, LCG_MASK);
                // u ∈ [0, 2^16); each squaring round skews toward 0.
                let mut u = f.bin(BinOp::Shr, state, 15);
                for _ in 0..skew {
                    let sq = f.mul(u, u);
                    u = f.bin(BinOp::Shr, sq, 16);
                }
                let scaled = f.mul(u, n);
                let idx = f.bin(BinOp::Shr, scaled, 16);
                let v = f.load(table.idx(idx));
                f.bin_into(sum, BinOp::Add, sum, v);
                f.store(acc.at(w as i64), sum);
            });
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        let tids: Vec<_> = funcs.iter().map(|&w| f.spawn(w, 0)).collect();
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
}

/// Wide thread fan-out (16–64 workers by default): every worker reads a
/// handful of shared hot words (promoting their read states to vectors
/// as wide as the thread count) and then streams strided reads over the
/// shared input with private accumulator writes — vector-clock width and
/// cross-shard spread, no synchronization beyond spawn/join.
fn fanout(mb: &mut ModuleBuilder, spec: &WorkloadSpec, seeds: &VictimPlan, rng: &mut StdRng) {
    let workers = spec.worker_threads() as usize;
    let n = (spec.addr_space as i64).max(workers as i64);
    let hot = n.min(4);
    let iters = (spec.events_per_thread.saturating_sub(hot as u32 + 2) / 2).max(1) as i64;
    let init: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..1 << 20)).collect();
    let input = mb.global_init("input", n as u64, init);
    let out = mb.global("out", workers as u64);
    let mut funcs = Vec::new();
    for w in 0..workers {
        funcs.push(mb.function(&format!("fan_worker{w}"), 1, |f| {
            seeds.emit(f, w);
            let sum = f.const_(0);
            for h in 0..hot {
                let v = f.load(input.at(h));
                f.bin_into(sum, BinOp::Add, sum, v);
            }
            counted_loop(f, iters, |f, i| {
                let strided = f.mul(i, workers as i64);
                let pos = f.add(strided, w as i64);
                let idx = f.bin(BinOp::Rem, pos, n);
                let v = f.load(input.idx(idx));
                f.bin_into(sum, BinOp::Add, sum, v);
                f.store(out.at(w as i64), sum);
            });
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        let tids: Vec<_> = funcs.iter().map(|&w| f.spawn(w, 0)).collect();
        // Join in reverse order — the join fan-in the merge sees is then
        // the mirror of the spawn fan-out.
        for t in tids.into_iter().rev() {
            f.join(t);
        }
        f.ret(None);
    });
}

/// Register-only busy-wait: burns scheduler steps without emitting a
/// single event, so one worker can be held back past another's critical
/// section under the deterministic round-robin schedule. The loop
/// counter never touches memory — neither the spin finder nor any
/// detector sees anything.
fn scheduling_delay(f: &mut FunctionBuilder, rounds: i64) {
    counted_loop(f, rounds, |_f, _i| {});
}

/// The reorder-only families, `straddle` (`publish == false`) and
/// `publish` (`publish == true`): races that exist only in *correct
/// reorderings* of the recorded interleaving.
///
/// Workers come in gadget pairs `(2p, 2p+1)`. The first `spec.races`
/// pairs are racy; the rest are the conflict-controlled mirror of the
/// same shape (the edge-keeping case), and any odd leftover worker only
/// does bulk table reads. In every gadget the second worker is held
/// back by a register-only [`scheduling_delay`], so the recorded trace
/// always orders the first worker's critical section before the
/// second's and the lock's release→acquire edge is the *only*
/// happens-before path across the pair:
///
/// * **straddle, racy** — worker `a` stores `race{p}` lock-free, then
///   locks `mu{p}` and stores its private scratch word; worker `b`
///   (delayed) runs its own non-conflicting critical section and stores
///   `race{p}` after unlocking. HB tools see the pair ordered through
///   the unrelated lock region (and the lockset stage stays disengaged:
///   neither victim store holds a lock); prediction drops the
///   non-conflicting edge and must report the pair.
/// * **straddle, conflict-controlled** — identical shape, but both
///   critical sections write one shared `conflict{p}` word, so the edge
///   survives prediction and `safe{p}` is clean under every tool.
/// * **publish, racy** — worker `a` publishes `race{p}` *inside* its
///   critical section; worker `b` (delayed) runs a non-conflicting
///   critical section and loads `race{p}` only after unlocking: ordered
///   under HB, a predicted write→read race once the edge is dropped.
/// * **publish, conflict-controlled** — worker `b` instead loads
///   `pub{p}` inside its critical section; the write→read conflict
///   keeps the edge.
///
/// After its gadget, every worker streams strided reads over a shared
/// read-only table with a private accumulator slot (the bulk of the
/// event budget, race-free by construction).
fn reorder(mb: &mut ModuleBuilder, spec: &WorkloadSpec, rng: &mut StdRng, publish: bool) -> Oracle {
    let workers = spec.worker_threads() as usize;
    let pairs = workers / 2;
    let races = (spec.races as usize).min(pairs);
    debug_assert_eq!(
        races, spec.races as usize,
        "worker_threads covers all pairs"
    );
    // Generous under round-robin: the leading worker's whole gadget is
    // ~10 steps, the delay hundreds.
    let delay = 96;
    let n = spec.addr_space.max(8) as i64;
    let iters = (spec.events_per_thread / 2).max(1) as i64;
    let init: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..1 << 20)).collect();
    let input = mb.global_init("input", n as u64, init);
    let acc = mb.global("acc", workers as u64);
    // Per-pair globals, planned up front (globals must exist before the
    // worker closures reference them).
    let mus: Vec<GlobalRef> = (0..pairs)
        .map(|p| mb.global(&format!("mu{p}"), 1))
        .collect();
    let mut victims = Vec::with_capacity(pairs);
    let mut expected = Vec::with_capacity(races);
    for p in 0..pairs {
        if p < races {
            victims.push(mb.global(&format!("race{p}"), 1));
            expected.push(ExpectedRace::new(
                format!("race{p}"),
                2 * p as u32 + 1,
                2 * p as u32 + 2,
            ));
        } else if publish {
            victims.push(mb.global(&format!("pub{p}"), 1));
        } else {
            victims.push(mb.global(&format!("safe{p}"), 1));
        }
    }
    let scratch_a: Vec<GlobalRef> = (0..pairs)
        .map(|p| mb.global(&format!("cs{p}a"), 1))
        .collect();
    let scratch_b: Vec<GlobalRef> = (0..pairs)
        .map(|p| mb.global(&format!("cs{p}b"), 1))
        .collect();
    let conflicts: Vec<GlobalRef> = (0..pairs)
        .map(|p| mb.global(&format!("conflict{p}"), 1))
        .collect();
    let mut funcs = Vec::new();
    for w in 0..workers {
        let p = w / 2;
        let leader = w % 2 == 0;
        let in_pair = p < pairs;
        let racy = in_pair && p < races;
        funcs.push(mb.function(&format!("reorder_worker{w}"), 1, |f| {
            let sum = f.const_(0);
            if in_pair {
                let (mu, victim) = (mus[p], victims[p]);
                let val = p as i64 + 1;
                if leader {
                    match (publish, racy) {
                        (false, true) => {
                            // Victim store lock-free, then an unrelated
                            // critical section.
                            f.store(victim.at(0), val);
                            f.lock(mu.at(0));
                            f.store(scratch_a[p].at(0), val);
                            f.unlock(mu.at(0));
                        }
                        (false, false) => {
                            f.store(victim.at(0), val);
                            f.lock(mu.at(0));
                            f.store(conflicts[p].at(0), val);
                            f.unlock(mu.at(0));
                        }
                        (true, _) => {
                            // Publication inside the critical section.
                            f.lock(mu.at(0));
                            f.store(victim.at(0), val);
                            f.unlock(mu.at(0));
                        }
                    }
                } else {
                    scheduling_delay(f, delay);
                    match (publish, racy) {
                        (false, true) => {
                            f.lock(mu.at(0));
                            f.store(scratch_b[p].at(0), -val);
                            f.unlock(mu.at(0));
                            f.store(victim.at(0), -val);
                        }
                        (false, false) => {
                            f.lock(mu.at(0));
                            f.store(conflicts[p].at(0), -val);
                            f.unlock(mu.at(0));
                            f.store(victim.at(0), -val);
                        }
                        (true, true) => {
                            f.lock(mu.at(0));
                            f.store(scratch_b[p].at(0), -val);
                            f.unlock(mu.at(0));
                            let v = f.load(victim.at(0));
                            f.bin_into(sum, BinOp::Add, sum, v);
                        }
                        (true, false) => {
                            f.lock(mu.at(0));
                            let v = f.load(victim.at(0));
                            f.unlock(mu.at(0));
                            f.bin_into(sum, BinOp::Add, sum, v);
                        }
                    }
                }
            }
            counted_loop(f, iters, |f, i| {
                let strided = f.mul(i, workers as i64);
                let pos = f.add(strided, w as i64);
                let idx = f.bin(BinOp::Rem, pos, n);
                let v = f.load(input.idx(idx));
                f.bin_into(sum, BinOp::Add, sum, v);
                f.store(acc.at(w as i64), sum);
            });
            f.ret(None);
        }));
    }
    mb.entry("main", |f| {
        let tids: Vec<_> = funcs.iter().map(|&w| f.spawn(w, 0)).collect();
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
    if expected.is_empty() {
        Oracle::RaceFree
    } else {
        expected.sort();
        Oracle::ReorderOnly(expected)
    }
}
