//! # SpinRace workloads — generated programs with known ground truth
//!
//! Every pinned suite in this repository checks tools against *recorded*
//! numbers. This crate closes the other half of the loop: parameterized
//! generators of TIR modules whose **true race set is known by
//! construction**, in the tradition of the workloads predictive-race and
//! replay-based evaluations are judged on. A [`WorkloadSpec`] (family,
//! threads, events per thread, address-space size, skew, seed, injected
//! races) deterministically builds a [`Workload`]:
//!
//! * a [`spinrace_tir::Module`] that is valid, spin-instrumentable
//!   TIR across the whole tool lineup (including `nolib` lowering), and
//! * an [`Oracle`] — either [`Oracle::RaceFree`] (correct-by-construction
//!   synchronization: every tool must report **0** contexts) or
//!   [`Oracle::SeededRaces`] (deliberately injected unsynchronized store
//!   pairs with computable variable names and thread ids: every tool must
//!   report **exactly** that set).
//!
//! Because loop trip counts — not unrolling — carry the scale, the same
//! families serve 100-event oracle tests and multi-million-event
//! steady-state perf streams; see [`Family`] for what each family
//! stresses.
//!
//! ```
//! use spinrace_workloads::{Family, Oracle, WorkloadSpec};
//!
//! let wl = WorkloadSpec::new(Family::Ring).races(2).seed(7).build();
//! let Oracle::SeededRaces(expected) = &wl.oracle else {
//!     panic!("races(2) seeds races");
//! };
//! assert_eq!(expected.len(), 2);
//! // The same spec always rebuilds the identical module…
//! let again = WorkloadSpec::from_name(&wl.module.name).unwrap().build();
//! assert_eq!(again.module.fingerprint(), wl.module.fingerprint());
//! // …and the race-free variant of every family is one knob away.
//! let clean = WorkloadSpec::new(Family::Ring).seed(7).build();
//! assert_eq!(clean.oracle, Oracle::RaceFree);
//! ```

mod families;
mod oracle;
mod spec;

pub use oracle::{ExpectedRace, Oracle, OracleVerdict};
pub use spec::{Family, ParseFamilyError, WorkloadSpec};

use spinrace_tir::Module;

/// A generated workload: the module plus its ground truth.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The spec that built this workload.
    pub spec: WorkloadSpec,
    /// The generated module (its name encodes the spec — see
    /// [`WorkloadSpec::name`]).
    pub module: Module,
    /// The computable ground truth.
    pub oracle: Oracle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_vm::record_run;

    #[test]
    fn every_family_builds_and_is_deterministic() {
        for fam in Family::all() {
            for races in [0u32, 2] {
                let spec = WorkloadSpec::new(fam).races(races).seed(42);
                let a = spec.build();
                let b = spec.build();
                assert_eq!(
                    a.module.fingerprint(),
                    b.module.fingerprint(),
                    "{fam}: same spec must rebuild the identical module"
                );
                assert_eq!(a.oracle, b.oracle, "{fam}: oracle must be deterministic");
                assert_eq!(a.module.name, spec.name());
                match races {
                    0 => assert_eq!(a.oracle, Oracle::RaceFree),
                    n => assert_eq!(a.oracle.expected().len(), n as usize, "{fam}"),
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::new(Family::Zipf).seed(1).build();
        let b = WorkloadSpec::new(Family::Zipf).seed(2).build();
        // Different table initializers (and a different name) — distinct
        // fingerprints.
        assert_ne!(a.module.fingerprint(), b.module.fingerprint());
    }

    #[test]
    fn expected_tids_are_worker_range() {
        for fam in Family::all() {
            let spec = WorkloadSpec::new(fam).races(3).seed(9);
            let wl = spec.build();
            let workers = spec.worker_threads();
            for e in wl.oracle.expected() {
                assert!(e.tids.0 >= 1 && e.tids.1 <= workers, "{fam}: {e}");
                assert!(e.tids.0 < e.tids.1, "{fam}: {e}");
            }
        }
    }

    /// The event budget is approximate by design, but it must stay within
    /// a small constant factor — `trace gen --events N` and the perf
    /// long-stream sizing both rely on it.
    #[test]
    fn recorded_streams_land_near_the_event_budget() {
        for fam in Family::all() {
            let spec = WorkloadSpec::new(fam).threads(4).events_per_thread(300);
            let wl = spec.build();
            let trace = record_run(&wl.module, spec.vm_config(), "cal").unwrap();
            let hint = spec.total_events_hint() as f64;
            let got = trace.events.len() as f64;
            assert!(
                got >= 0.5 * hint && got <= 4.0 * hint,
                "{fam}: {got} events for a hint of {hint}"
            );
        }
    }

    /// Wide fan-out at the top of its range builds and runs within the
    /// spec's own VM budget.
    #[test]
    fn wide_fanout_runs_at_64_threads() {
        let spec = WorkloadSpec::new(Family::Fanout)
            .threads(64)
            .events_per_thread(40);
        let wl = spec.build();
        let trace = record_run(&wl.module, spec.vm_config(), "wide").unwrap();
        assert_eq!(trace.summary.threads_created, 65);
    }
}
