//! Ground-truth oracles: what every tool must report on a generated
//! workload — and, just as importantly, what it must *not* report.

use std::fmt;

/// One deliberately injected race: two plain stores to a dedicated
/// one-word victim global, one store in each of two distinct worker
/// threads, placed before the first synchronization operation of either
/// thread so no happens-before path can order them.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExpectedRace {
    /// The victim global's name (`race0`, `race1`, …) — exactly the
    /// location string reports resolve to.
    pub location: String,
    /// The two dynamic thread ids involved, sorted ascending. Worker
    /// threads are spawned in build order, so these are stable across
    /// tools and schedules (main is tid 0; worker `i` is tid `i + 1`).
    pub tids: (u32, u32),
}

impl ExpectedRace {
    /// Construct with the tid pair normalized ascending.
    pub fn new(location: impl Into<String>, a: u32, b: u32) -> ExpectedRace {
        ExpectedRace {
            location: location.into(),
            tids: (a.min(b), a.max(b)),
        }
    }
}

impl fmt::Display for ExpectedRace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (t{} vs t{})",
            self.location, self.tids.0, self.tids.1
        )
    }
}

/// The computable ground truth of a generated workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Oracle {
    /// Correct by construction: only synchronization every tool
    /// understands (spawn/join, mutexes, semaphores, barriers, pre-spawn
    /// publication), so **every** tool must report 0 racy contexts.
    RaceFree,
    /// Exactly these injected races — every tool must report each of
    /// them, and nothing else.
    SeededRaces(Vec<ExpectedRace>),
    /// Races that exist only in *reorderings* of the recorded
    /// interleaving: every happens-before edge in the trace as recorded
    /// orders the access pair, but reversing two independent critical
    /// sections exposes it. Witnessed-interleaving (HB) tools must
    /// report **0**; predictive tools must report exactly this set.
    ReorderOnly(Vec<ExpectedRace>),
}

impl Oracle {
    /// The full injected ground truth (empty for [`Oracle::RaceFree`]) —
    /// what a perfect predictive tool reports. Use
    /// [`Oracle::expected_for`] to judge a specific tool class.
    pub fn expected(&self) -> &[ExpectedRace] {
        match self {
            Oracle::RaceFree => &[],
            Oracle::SeededRaces(v) | Oracle::ReorderOnly(v) => v,
        }
    }

    /// The races a tool of the given class must report: reorder-only
    /// injections are invisible to witnessed-interleaving tools by
    /// construction.
    pub fn expected_for(&self, predictive: bool) -> &[ExpectedRace] {
        match self {
            Oracle::RaceFree => &[],
            Oracle::SeededRaces(v) => v,
            Oracle::ReorderOnly(v) => {
                if predictive {
                    v
                } else {
                    &[]
                }
            }
        }
    }

    /// One-line description for tables and CLI output.
    pub fn describe(&self) -> String {
        match self {
            Oracle::RaceFree => "race-free".to_string(),
            Oracle::SeededRaces(v) => format!("seeded({})", v.len()),
            Oracle::ReorderOnly(v) => format!("reorder-only({})", v.len()),
        }
    }

    /// Judge an observed report list against the ground truth. Each
    /// observation is `(location, tid, tid)` of one reported racy
    /// context; duplicates (several contexts on one victim) count as
    /// unexpected, since the injection produces exactly one static
    /// access pair per victim.
    pub fn verdict<'a, I>(&self, observed: I) -> OracleVerdict
    where
        I: IntoIterator<Item = (&'a str, u32, u32)>,
    {
        self.verdict_for(true, observed)
    }

    /// [`Oracle::verdict`] against the ground truth a tool of the given
    /// class owes ([`Oracle::expected_for`]): an HB tool reporting a
    /// reorder-only victim fails as *unexpected*, a predictive tool
    /// omitting it fails as *missed*.
    pub fn verdict_for<'a, I>(&self, predictive: bool, observed: I) -> OracleVerdict
    where
        I: IntoIterator<Item = (&'a str, u32, u32)>,
    {
        let mut missed: Vec<ExpectedRace> = self.expected_for(predictive).to_vec();
        let mut unexpected = Vec::new();
        for (loc, a, b) in observed {
            let got = ExpectedRace::new(loc, a, b);
            match missed.iter().position(|e| *e == got) {
                Some(i) => {
                    missed.swap_remove(i);
                }
                None => unexpected.push(got),
            }
        }
        missed.sort();
        unexpected.sort();
        OracleVerdict { missed, unexpected }
    }
}

/// The outcome of judging one tool's reports against an [`Oracle`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleVerdict {
    /// Injected races no report matched (soundness failures).
    pub missed: Vec<ExpectedRace>,
    /// Reports matching no injected race (completeness failures — on a
    /// race-free workload, every report lands here).
    pub unexpected: Vec<ExpectedRace>,
}

impl OracleVerdict {
    /// Did the tool report exactly the ground truth?
    pub fn pass(&self) -> bool {
        self.missed.is_empty() && self.unexpected.is_empty()
    }
}

impl fmt::Display for OracleVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pass() {
            return f.write_str("pass");
        }
        let miss: Vec<String> = self.missed.iter().map(|e| e.to_string()).collect();
        let extra: Vec<String> = self.unexpected.iter().map(|e| e.to_string()).collect();
        write!(
            f,
            "missed [{}], unexpected [{}]",
            miss.join(", "),
            extra.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_free_flags_any_report() {
        let v = Oracle::RaceFree.verdict([("g", 1, 2)]);
        assert!(!v.pass());
        assert_eq!(v.unexpected, vec![ExpectedRace::new("g", 1, 2)]);
        assert!(Oracle::RaceFree.verdict([]).pass());
    }

    #[test]
    fn seeded_matches_exact_set_order_insensitive() {
        let oracle = Oracle::SeededRaces(vec![
            ExpectedRace::new("race0", 1, 3),
            ExpectedRace::new("race1", 2, 4),
        ]);
        // Reversed tid order and report order both match.
        assert!(oracle.verdict([("race1", 4, 2), ("race0", 3, 1)]).pass());
        // A missing and an extra report both fail.
        let v = oracle.verdict([("race0", 1, 3), ("other", 1, 2)]);
        assert_eq!(v.missed, vec![ExpectedRace::new("race1", 2, 4)]);
        assert_eq!(v.unexpected, vec![ExpectedRace::new("other", 1, 2)]);
        // A duplicate context on one victim is unexpected.
        let v = oracle.verdict([("race0", 1, 3), ("race0", 1, 3), ("race1", 2, 4)]);
        assert!(!v.pass());
    }

    #[test]
    fn reorder_only_depends_on_tool_class() {
        let oracle = Oracle::ReorderOnly(vec![ExpectedRace::new("race0", 1, 2)]);
        // The full ground truth is still the injected set.
        assert_eq!(oracle.expected().len(), 1);
        assert_eq!(oracle.expected_for(true).len(), 1);
        assert!(oracle.expected_for(false).is_empty());
        // Predictive tools owe the set; HB tools owe silence.
        assert!(oracle.verdict_for(true, [("race0", 2, 1)]).pass());
        assert!(!oracle.verdict_for(true, []).pass());
        assert!(oracle.verdict_for(false, []).pass());
        let v = oracle.verdict_for(false, [("race0", 1, 2)]);
        assert_eq!(v.unexpected, vec![ExpectedRace::new("race0", 1, 2)]);
        // Seeded and race-free oracles are class-independent.
        assert_eq!(
            Oracle::RaceFree.verdict_for(false, []).pass(),
            Oracle::RaceFree.verdict_for(true, []).pass()
        );
    }
}
