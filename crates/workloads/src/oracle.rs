//! Ground-truth oracles: what every tool must report on a generated
//! workload — and, just as importantly, what it must *not* report.

use std::fmt;

/// One deliberately injected race: two plain stores to a dedicated
/// one-word victim global, one store in each of two distinct worker
/// threads, placed before the first synchronization operation of either
/// thread so no happens-before path can order them.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExpectedRace {
    /// The victim global's name (`race0`, `race1`, …) — exactly the
    /// location string reports resolve to.
    pub location: String,
    /// The two dynamic thread ids involved, sorted ascending. Worker
    /// threads are spawned in build order, so these are stable across
    /// tools and schedules (main is tid 0; worker `i` is tid `i + 1`).
    pub tids: (u32, u32),
}

impl ExpectedRace {
    /// Construct with the tid pair normalized ascending.
    pub fn new(location: impl Into<String>, a: u32, b: u32) -> ExpectedRace {
        ExpectedRace {
            location: location.into(),
            tids: (a.min(b), a.max(b)),
        }
    }
}

impl fmt::Display for ExpectedRace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (t{} vs t{})",
            self.location, self.tids.0, self.tids.1
        )
    }
}

/// The computable ground truth of a generated workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Oracle {
    /// Correct by construction: only synchronization every tool
    /// understands (spawn/join, mutexes, semaphores, barriers, pre-spawn
    /// publication), so **every** tool must report 0 racy contexts.
    RaceFree,
    /// Exactly these injected races — every tool must report each of
    /// them, and nothing else.
    SeededRaces(Vec<ExpectedRace>),
}

impl Oracle {
    /// The expected races (empty for [`Oracle::RaceFree`]).
    pub fn expected(&self) -> &[ExpectedRace] {
        match self {
            Oracle::RaceFree => &[],
            Oracle::SeededRaces(v) => v,
        }
    }

    /// One-line description for tables and CLI output.
    pub fn describe(&self) -> String {
        match self {
            Oracle::RaceFree => "race-free".to_string(),
            Oracle::SeededRaces(v) => format!("seeded({})", v.len()),
        }
    }

    /// Judge an observed report list against the ground truth. Each
    /// observation is `(location, tid, tid)` of one reported racy
    /// context; duplicates (several contexts on one victim) count as
    /// unexpected, since the injection produces exactly one static
    /// access pair per victim.
    pub fn verdict<'a, I>(&self, observed: I) -> OracleVerdict
    where
        I: IntoIterator<Item = (&'a str, u32, u32)>,
    {
        let mut missed: Vec<ExpectedRace> = self.expected().to_vec();
        let mut unexpected = Vec::new();
        for (loc, a, b) in observed {
            let got = ExpectedRace::new(loc, a, b);
            match missed.iter().position(|e| *e == got) {
                Some(i) => {
                    missed.swap_remove(i);
                }
                None => unexpected.push(got),
            }
        }
        missed.sort();
        unexpected.sort();
        OracleVerdict { missed, unexpected }
    }
}

/// The outcome of judging one tool's reports against an [`Oracle`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleVerdict {
    /// Injected races no report matched (soundness failures).
    pub missed: Vec<ExpectedRace>,
    /// Reports matching no injected race (completeness failures — on a
    /// race-free workload, every report lands here).
    pub unexpected: Vec<ExpectedRace>,
}

impl OracleVerdict {
    /// Did the tool report exactly the ground truth?
    pub fn pass(&self) -> bool {
        self.missed.is_empty() && self.unexpected.is_empty()
    }
}

impl fmt::Display for OracleVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pass() {
            return f.write_str("pass");
        }
        let miss: Vec<String> = self.missed.iter().map(|e| e.to_string()).collect();
        let extra: Vec<String> = self.unexpected.iter().map(|e| e.to_string()).collect();
        write!(
            f,
            "missed [{}], unexpected [{}]",
            miss.join(", "),
            extra.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_free_flags_any_report() {
        let v = Oracle::RaceFree.verdict([("g", 1, 2)]);
        assert!(!v.pass());
        assert_eq!(v.unexpected, vec![ExpectedRace::new("g", 1, 2)]);
        assert!(Oracle::RaceFree.verdict([]).pass());
    }

    #[test]
    fn seeded_matches_exact_set_order_insensitive() {
        let oracle = Oracle::SeededRaces(vec![
            ExpectedRace::new("race0", 1, 3),
            ExpectedRace::new("race1", 2, 4),
        ]);
        // Reversed tid order and report order both match.
        assert!(oracle.verdict([("race1", 4, 2), ("race0", 3, 1)]).pass());
        // A missing and an extra report both fail.
        let v = oracle.verdict([("race0", 1, 3), ("other", 1, 2)]);
        assert_eq!(v.missed, vec![ExpectedRace::new("race1", 2, 4)]);
        assert_eq!(v.unexpected, vec![ExpectedRace::new("other", 1, 2)]);
        // A duplicate context on one victim is unexpected.
        let v = oracle.verdict([("race0", 1, 3), ("race0", 1, 3), ("race1", 2, 4)]);
        assert!(!v.pass());
    }
}
