//! Workload parameterization: [`Family`], [`WorkloadSpec`], and the
//! spec↔name encoding that lets a recorded trace be rebound to its
//! generating module by name alone.

use crate::Workload;
use spinrace_vm::VmConfig;
use std::fmt;
use std::str::FromStr;

/// The generator families. Each family emits a different synchronization
/// topology, and each stresses a different detector path:
///
/// | family      | topology                          | stresses                         |
/// |-------------|-----------------------------------|----------------------------------|
/// | `ring`      | producer–consumer semaphore rings | sem HB edges, slot reuse         |
/// | `spinflag`  | spin-flag + guarded publication   | spin promotion, promotion seeds  |
/// | `barrier`   | barrier-phased neighbour compute  | barrier generations, phase HB    |
/// | `zipf`      | skewed shared-array read streams  | `ReadState` promotion, hot pages |
/// | `fanout`    | wide thread fan-out (16–64)       | vector-clock width, shard spread |
/// | `straddle`  | racy pair straddling an unrelated lock region | predictive CS-conflict edges |
/// | `publish`   | write published after an unordered release    | predictive write→read edges  |
///
/// The last two inject **reorder-only** races when `races > 0`: the
/// recorded interleaving orders the victim pair through a mutex edge
/// between *independent* critical sections, so witnessed-interleaving
/// tools must stay silent while sync-preserving prediction must report
/// the injected set ([`crate::Oracle::ReorderOnly`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Producer–consumer rings synchronized by counting semaphores.
    Ring,
    /// Spin-flag publication (pre-published flag) plus a mutex-guarded
    /// double-checked publication stage.
    SpinFlag,
    /// Barrier-phased compute with cross-thread neighbour reads.
    Barrier,
    /// Zipf-skewed read streams over a shared array (LCG in TIR).
    Zipf,
    /// Wide thread fan-out over strided slices plus shared hot words.
    Fanout,
    /// A racy store pair straddling an unrelated lock region: the lock
    /// edge between two non-conflicting critical sections is the only
    /// thing ordering the stores in the recorded trace.
    Straddle,
    /// A store inside a critical section consumed by a load *after* a
    /// later, non-conflicting critical section on the same lock.
    Publish,
}

impl Family {
    /// Every family, in canonical order.
    pub fn all() -> [Family; 7] {
        [
            Family::Ring,
            Family::SpinFlag,
            Family::Barrier,
            Family::Zipf,
            Family::Fanout,
            Family::Straddle,
            Family::Publish,
        ]
    }

    /// The short name used on command lines and in module names.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Ring => "ring",
            Family::SpinFlag => "spinflag",
            Family::Barrier => "barrier",
            Family::Zipf => "zipf",
            Family::Fanout => "fanout",
            Family::Straddle => "straddle",
            Family::Publish => "publish",
        }
    }

    /// Does `races > 0` inject reorder-only races (visible to predictive
    /// tools only) rather than witnessed ones?
    pub fn reorder_only(&self) -> bool {
        matches!(self, Family::Straddle | Family::Publish)
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A family name that [`Family::from_str`] could not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseFamilyError(pub String);

impl fmt::Display for ParseFamilyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown workload family {:?} (expected ring, spinflag, barrier, zipf, fanout, \
             straddle or publish)",
            self.0
        )
    }
}

impl std::error::Error for ParseFamilyError {}

impl FromStr for Family {
    type Err = ParseFamilyError;

    fn from_str(s: &str) -> Result<Family, ParseFamilyError> {
        Family::all()
            .into_iter()
            .find(|f| f.name() == s.trim())
            .ok_or_else(|| ParseFamilyError(s.to_string()))
    }
}

/// Full parameterization of one generated workload. Construction is
/// deterministic: the same spec always builds the same module (same
/// fingerprint) and the same oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// Generator family.
    pub family: Family,
    /// Requested worker threads (main excluded). Families may round this
    /// to their topology — see [`WorkloadSpec::worker_threads`].
    pub threads: u32,
    /// Approximate events each worker contributes to the stream. The
    /// generators translate this into loop trip counts; the recorded
    /// stream lands within a small constant factor.
    pub events_per_thread: u32,
    /// Size of the shared address region (array words, ring capacity).
    pub addr_space: u32,
    /// Skew intensity for [`Family::Zipf`]: the number of in-TIR
    /// squaring rounds applied to the uniform sample (0 = uniform; each
    /// round biases the index distribution harder toward low indices and
    /// therefore toward few shadow pages/shards).
    pub skew: u32,
    /// Number of deliberately injected races. 0 builds the
    /// correct-by-construction variant ([`crate::Oracle::RaceFree`]);
    /// n > 0 injects n single-write/single-write victim pairs
    /// ([`crate::Oracle::SeededRaces`]).
    pub races: u32,
    /// Seed for all generator randomness (victim pairing, LCG constants,
    /// initial array contents) — drawn from the vendored `rand`.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A small default spec for `family` (race-free).
    pub fn new(family: Family) -> WorkloadSpec {
        WorkloadSpec {
            family,
            threads: match family {
                Family::Fanout => 16,
                _ => 4,
            },
            events_per_thread: 64,
            addr_space: match family {
                Family::Zipf => 1024,
                _ => 64,
            },
            skew: if family == Family::Zipf { 2 } else { 0 },
            races: 0,
            seed: 1,
        }
    }

    /// Builder-style setters.
    pub fn threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }
    /// Set the per-worker event budget.
    pub fn events_per_thread(mut self, events: u32) -> Self {
        self.events_per_thread = events;
        self
    }
    /// Set the shared-region size.
    pub fn addr_space(mut self, words: u32) -> Self {
        self.addr_space = words;
        self
    }
    /// Set the zipf skew (squaring rounds).
    pub fn skew(mut self, skew: u32) -> Self {
        self.skew = skew;
        self
    }
    /// Set the number of injected races.
    pub fn races(mut self, races: u32) -> Self {
        self.races = races;
        self
    }
    /// Set the generator seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Split a *total* event target across this spec's workers (used by
    /// `trace gen --events N`, which speaks in stream totals).
    pub fn with_total_events(mut self, total: u64) -> Self {
        let workers = self.worker_threads().max(1) as u64;
        self.events_per_thread = u32::try_from(total.div_ceil(workers)).unwrap_or(u32::MAX);
        self
    }

    /// Worker threads the family actually spawns. [`Family::Ring`] rounds
    /// up to full producer/consumer pairs; the reorder-only families
    /// widen to one worker pair per injected race; everything else spawns
    /// `threads` (at least 2, so a cross-thread oracle is well-defined).
    pub fn worker_threads(&self) -> u32 {
        let t = self.threads.max(2);
        match self.family {
            Family::Ring => t.div_ceil(2) * 2,
            Family::Straddle | Family::Publish => t.max(self.races.saturating_mul(2)),
            _ => t,
        }
    }

    /// Rough lower bound on the events the built module will emit —
    /// used for step budgeting, not for oracles.
    pub fn total_events_hint(&self) -> u64 {
        self.worker_threads() as u64 * self.events_per_thread.max(1) as u64
    }

    /// A VM configuration sized for this spec: deterministic round-robin
    /// scheduling with a step budget that scales with the event target
    /// (the stock 5M-step default would abort multi-million-event
    /// streams) and a thread cap clearing the fan-out width.
    pub fn vm_config(&self) -> VmConfig {
        let mut cfg = VmConfig::round_robin();
        // ~12 instructions per recorded event is generous for every
        // family; spin waits under contention add slack on top.
        let budget = 1_000_000 + self.total_events_hint().saturating_mul(24);
        cfg.max_steps = cfg.max_steps.max(budget);
        cfg.max_threads = cfg.max_threads.max(self.worker_threads() as usize + 2);
        cfg
    }

    /// The canonical module name: `wl-<family>-t..-e..-a..-k..-r..-s..`.
    /// [`WorkloadSpec::from_name`] round-trips it, which is what lets
    /// `trace replay` rebuild a generated module from its header alone.
    pub fn name(&self) -> String {
        format!(
            "wl-{}-t{}-e{}-a{}-k{}-r{}-s{}",
            self.family,
            self.threads,
            self.events_per_thread,
            self.addr_space,
            self.skew,
            self.races,
            self.seed
        )
    }

    /// Parse a spec back out of a module name produced by
    /// [`WorkloadSpec::name`]. Returns `None` for non-workload names —
    /// including truncated, garbled, or absurdly-sized fields: the name
    /// may come from an untrusted trace header, and `build()` on an
    /// unbounded spec could spin for hours, divide by zero
    /// (`addr_space == 0`), or allocate without limit. Parsed fields are
    /// therefore held to the same bounds a plausible generated workload
    /// satisfies: `1..=1024` threads, a nonzero address space, skew
    /// `<= 64`, and at most `65536` injected races.
    pub fn from_name(name: &str) -> Option<WorkloadSpec> {
        let rest = name.strip_prefix("wl-")?;
        let (family_str, rest) = rest.split_at(rest.find("-t")?);
        let family: Family = family_str.parse().ok()?;
        let mut spec = WorkloadSpec::new(family);
        for part in rest.split('-').filter(|p| !p.is_empty()) {
            // `split_at_checked`, not `split_at`: a multi-byte first
            // character must parse as "not a workload name", never panic.
            let (key, value) = part.split_at_checked(1)?;
            match key {
                "t" => spec.threads = value.parse().ok()?,
                "e" => spec.events_per_thread = value.parse().ok()?,
                "a" => spec.addr_space = value.parse().ok()?,
                "k" => spec.skew = value.parse().ok()?,
                "r" => spec.races = value.parse().ok()?,
                "s" => spec.seed = value.parse().ok()?,
                _ => return None,
            }
        }
        let plausible = (1..=1024).contains(&spec.threads)
            && spec.addr_space >= 1
            && spec.skew <= 64
            && spec.races <= 65536;
        plausible.then_some(spec)
    }

    /// Build the module and its oracle.
    pub fn build(&self) -> Workload {
        crate::families::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_round_trip() {
        for fam in Family::all() {
            assert_eq!(fam.name().parse::<Family>().unwrap(), fam);
        }
        assert!("rings".parse::<Family>().is_err());
    }

    #[test]
    fn spec_names_round_trip() {
        let spec = WorkloadSpec::new(Family::Zipf)
            .threads(9)
            .events_per_thread(12345)
            .addr_space(4096)
            .skew(3)
            .races(2)
            .seed(987654321);
        assert_eq!(spec.name(), "wl-zipf-t9-e12345-a4096-k3-r2-s987654321");
        assert_eq!(WorkloadSpec::from_name(&spec.name()), Some(spec));
        for fam in Family::all() {
            let s = WorkloadSpec::new(fam);
            assert_eq!(WorkloadSpec::from_name(&s.name()), Some(s));
        }
        assert_eq!(WorkloadSpec::from_name("blackscholes"), None);
        assert_eq!(WorkloadSpec::from_name("wl-nosuch-t2"), None);
        // Untrusted input (trace headers) must degrade to None, never
        // panic — including multi-byte characters at key position.
        assert_eq!(WorkloadSpec::from_name("wl-zipf-t2-é3"), None);
        assert_eq!(WorkloadSpec::from_name("wl-zipf-t2-x9"), None);
        assert_eq!(WorkloadSpec::from_name("wl-ring-t"), None);
    }

    /// Each malformed shape an untrusted trace header can take: truncated
    /// names, garbled fields, and digits that parse but describe a
    /// workload no generator would emit (`build()` on those could divide
    /// by zero, allocate absurdly, or spin for hours).
    #[test]
    fn from_name_rejects_truncated_and_garbled_fields() {
        for (name, why) in [
            ("wl-", "family and fields both missing"),
            ("wl-zipf", "no -t field at all"),
            ("wl-zipf-", "dangling separator"),
            ("wl-zipf-t", "key with empty value"),
            ("wl-zipf-t2-e", "later key with empty value"),
            ("wl-zipf-t2-a12x4", "non-digit splice inside a value"),
            ("wl-zipf-t-2", "value detached from its key"),
            ("wl-zipf-t2-e99999999999999999999", "value overflows u32"),
            ("wl-zipf-t2-s99999999999999999999", "seed overflows u64"),
            ("wl-zipf-t2-q7", "unknown key"),
            ("wl-zipf-t2-Т7", "multi-byte key (Cyrillic Т)"),
        ] {
            assert_eq!(WorkloadSpec::from_name(name), None, "{why}: {name:?}");
        }
    }

    /// Parsed-but-implausible field values are rejected too: `from_name`
    /// feeds `build()`, so bounds are the line between "replay rebuilds
    /// the module" and "a hostile header makes replay hang or abort".
    #[test]
    fn from_name_rejects_implausible_bounds() {
        for (name, why) in [
            ("wl-zipf-t0", "zero threads"),
            ("wl-zipf-t2000000", "absurd thread count"),
            (
                "wl-zipf-t2-a0",
                "empty address space (division by zero in families)",
            ),
            (
                "wl-zipf-t2-k4000000000",
                "absurd skew (per-round squaring loop)",
            ),
            ("wl-zipf-t2-r4000000000", "absurd race-injection count"),
        ] {
            assert_eq!(WorkloadSpec::from_name(name), None, "{why}: {name:?}");
        }
        // The boundary values themselves stay accepted.
        assert!(WorkloadSpec::from_name("wl-zipf-t1024-k64-r65536").is_some());
        assert!(WorkloadSpec::from_name("wl-zipf-t1-a1-k0-r0").is_some());
    }

    #[test]
    fn ring_rounds_to_pairs_and_total_split() {
        let spec = WorkloadSpec::new(Family::Ring).threads(5);
        assert_eq!(spec.worker_threads(), 6);
        let spec = spec.with_total_events(600_000);
        assert_eq!(spec.events_per_thread, 100_000);
    }

    #[test]
    fn vm_config_scales_with_event_target() {
        let small = WorkloadSpec::new(Family::Zipf).vm_config();
        assert_eq!(small.max_steps, 5_000_000, "small specs keep the default");
        let big = WorkloadSpec::new(Family::Zipf)
            .threads(8)
            .events_per_thread(250_000);
        assert!(big.vm_config().max_steps > 24 * 2_000_000);
        let wide = WorkloadSpec::new(Family::Fanout).threads(200);
        assert!(wide.vm_config().max_threads >= 202);
    }
}
